#include "src/ts/nn_forecasters.h"

#include <cmath>

#include "src/nn/activations.h"
#include "src/nn/conv1d.h"
#include "src/nn/dense.h"
#include "src/nn/dropout.h"
#include "src/nn/loss.h"
#include "src/nn/lstm.h"
#include "src/nn/optimizer.h"
#include "src/nn/slice.h"
#include "src/nn/trainer.h"

namespace coda::ts {
namespace {

// Derives (seq_len, channels) for temporal models from the flattened row
// width and the n_vars parameter.
std::pair<std::size_t, std::size_t> sequence_shape(std::size_t in_features,
                                                   std::int64_t n_vars_param,
                                                   const std::string& who) {
  const auto channels = static_cast<std::size_t>(n_vars_param);
  require(channels >= 1, who + ": n_vars must be >= 1");
  require(in_features % channels == 0,
          who + ": input width " + std::to_string(in_features) +
              " is not a multiple of n_vars " + std::to_string(channels));
  return {in_features / channels, channels};
}

}  // namespace

NeuralForecaster::NeuralForecaster(std::string name)
    : Estimator(std::move(name)) {
  declare_param("epochs", std::int64_t{40});
  declare_param("batch_size", std::int64_t{32});
  declare_param("learning_rate", 1e-3);
  declare_param("dropout", 0.1);
  declare_param("seed", std::int64_t{42});
}

void NeuralForecaster::fit(const Matrix& X, const std::vector<double>& y) {
  require(X.rows() == y.size(), name() + ": X/y size mismatch");
  require(X.rows() > 0, name() + ": empty input");

  y_mean_ = 0.0;
  for (const double v : y) y_mean_ += v;
  y_mean_ /= static_cast<double>(y.size());
  double var = 0.0;
  for (const double v : y) var += (v - y_mean_) * (v - y_mean_);
  y_scale_ = std::sqrt(var / static_cast<double>(y.size()));
  if (y_scale_ == 0.0) y_scale_ = 1.0;
  std::vector<double> scaled(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    scaled[i] = (y[i] - y_mean_) / y_scale_;
  }

  net_ = build_network(X.cols());
  nn::TrainConfig train_cfg;
  train_cfg.epochs = static_cast<std::size_t>(params().get_int("epochs"));
  train_cfg.batch_size =
      static_cast<std::size_t>(params().get_int("batch_size"));
  train_cfg.shuffle_seed = seed();
  nn::MseLoss loss;
  nn::Adam optimizer(params().get_double("learning_rate"));
  nn::train(net_, X, nn::column_matrix(scaled), loss, optimizer, train_cfg);
  fitted_ = true;
}

std::vector<double> NeuralForecaster::predict(const Matrix& X) const {
  require_state(fitted_, name() + ": call fit() first");
  nn::Sequential net = net_;  // forward mutates caches; keep predict const
  const Matrix out = net.forward(X, /*training=*/false);
  std::vector<double> pred(X.rows());
  for (std::size_t i = 0; i < X.rows(); ++i) {
    pred[i] = out(i, 0) * y_scale_ + y_mean_;
  }
  return pred;
}

nn::Sequential DnnForecaster::build_network(std::size_t in_features) const {
  const std::string& arch = params().get_string("arch");
  require(arch == "simple" || arch == "deep",
          "DnnForecaster: arch must be 'simple' or 'deep'");
  const auto hidden = static_cast<std::size_t>(params().get_int("hidden"));
  const std::size_t n_hidden = arch == "simple" ? 2 : 4;

  // Hidden activations fuse into the Dense GEMM epilogues; seeds unchanged.
  nn::Sequential net;
  std::size_t width = in_features;
  for (std::size_t l = 0; l < n_hidden; ++l) {
    net.emplace<nn::Dense>(width, hidden, seed() + l,
                           kernels::Activation::kRelu);
    if (dropout_rate() > 0.0) {
      net.emplace<nn::Dropout>(dropout_rate(), seed() + 100 + l);
    }
    width = hidden;
  }
  net.emplace<nn::Dense>(width, std::size_t{1}, seed() + 999);
  return net;
}

nn::Sequential LstmForecaster::build_network(std::size_t in_features) const {
  const std::string& arch = params().get_string("arch");
  require(arch == "simple" || arch == "deep",
          "LstmForecaster: arch must be 'simple' or 'deep'");
  const auto hidden = static_cast<std::size_t>(params().get_int("hidden"));
  const auto [seq_len, channels] =
      sequence_shape(in_features, params().get_int("n_vars"), "lstm");
  (void)seq_len;
  const std::size_t n_layers = arch == "simple" ? 1 : 4;

  nn::Sequential net;
  std::size_t width = channels;
  for (std::size_t l = 0; l < n_layers; ++l) {
    const bool return_sequences = l + 1 < n_layers;
    net.emplace<nn::Lstm>(width, hidden, return_sequences, seed() + l);
    if (dropout_rate() > 0.0) {
      net.emplace<nn::Dropout>(dropout_rate(), seed() + 100 + l);
    }
    width = hidden;
  }
  net.emplace<nn::Dense>(hidden, std::size_t{1}, seed() + 999);
  return net;
}

nn::Sequential CnnForecaster::build_network(std::size_t in_features) const {
  const std::string& arch = params().get_string("arch");
  require(arch == "simple" || arch == "deep",
          "CnnForecaster: arch must be 'simple' or 'deep'");
  const auto filters = static_cast<std::size_t>(params().get_int("filters"));
  const auto kernel = static_cast<std::size_t>(params().get_int("kernel"));
  const auto hidden = static_cast<std::size_t>(params().get_int("hidden"));
  const auto [seq_len, channels] =
      sequence_shape(in_features, params().get_int("n_vars"), "cnn");
  const std::size_t blocks = arch == "simple" ? 1 : 2;

  nn::Sequential net;
  std::size_t length = seq_len;
  std::size_t width = channels;
  for (std::size_t b = 0; b < blocks; ++b) {
    net.emplace<nn::Conv1D>(width, filters, kernel, /*dilation=*/1,
                            /*causal=*/true, seed() + b);
    net.emplace<nn::ReLU>();
    if (length >= 2) {
      net.emplace<nn::MaxPool1D>(filters, std::size_t{2});
      length /= 2;
    }
    width = filters;
  }
  require(length >= 1, "CnnForecaster: sequence pooled away");
  net.emplace<nn::Dense>(length * filters, hidden, seed() + 500,
                         kernels::Activation::kRelu);
  if (dropout_rate() > 0.0) {
    net.emplace<nn::Dropout>(dropout_rate(), seed() + 600);
  }
  net.emplace<nn::Dense>(hidden, std::size_t{1}, seed() + 999);
  return net;
}

nn::Sequential WaveNetForecaster::build_network(
    std::size_t in_features) const {
  const auto filters = static_cast<std::size_t>(params().get_int("filters"));
  const auto [seq_len, channels] =
      sequence_shape(in_features, params().get_int("n_vars"), "wavenet");

  nn::Sequential net;
  std::size_t width = channels;
  // Dilations 1, 2, 4, ... while the kernel span fits in the history.
  std::size_t layer = 0;
  for (std::size_t dilation = 1; dilation < seq_len; dilation *= 2) {
    net.emplace<nn::Conv1D>(width, filters, std::size_t{2}, dilation,
                            /*causal=*/true, seed() + layer);
    net.emplace<nn::ReLU>();
    width = filters;
    ++layer;
  }
  if (layer == 0) {  // degenerate history of 1 step: plain 1x1 conv
    net.emplace<nn::Conv1D>(width, filters, std::size_t{1}, std::size_t{1},
                            /*causal=*/true, seed());
    net.emplace<nn::ReLU>();
  }
  net.emplace<nn::SliceLastTimestep>(filters);
  net.emplace<nn::Dense>(filters, std::size_t{1}, seed() + 999);
  return net;
}

nn::Sequential SeriesNetForecaster::build_network(
    std::size_t in_features) const {
  const auto filters = static_cast<std::size_t>(params().get_int("filters"));
  const auto [seq_len, channels] =
      sequence_shape(in_features, params().get_int("n_vars"), "seriesnet");

  nn::Sequential net;
  std::size_t width = channels;
  std::size_t layer = 0;
  // Deeper schedule than WaveNet: two passes over the dilation ladder.
  for (std::size_t pass = 0; pass < 2; ++pass) {
    for (std::size_t dilation = 1; dilation < seq_len; dilation *= 2) {
      net.emplace<nn::Conv1D>(width, filters, std::size_t{2}, dilation,
                              /*causal=*/true, seed() + layer);
      net.emplace<nn::Tanh>();
      width = filters;
      ++layer;
    }
  }
  if (layer == 0) {
    net.emplace<nn::Conv1D>(width, filters, std::size_t{1}, std::size_t{1},
                            /*causal=*/true, seed());
    net.emplace<nn::Tanh>();
  }
  net.emplace<nn::SliceLastTimestep>(filters);
  net.emplace<nn::Dense>(filters, std::size_t{1}, seed() + 999);
  return net;
}

}  // namespace coda::ts
