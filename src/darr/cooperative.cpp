#include "src/darr/cooperative.h"

#include <atomic>
#include <memory>
#include <thread>

#include "src/dist/telemetry.h"
#include "src/obs/profiler.h"
#include "src/obs/timeseries.h"
#include "src/obs/trace.h"
#include "src/util/stopwatch.h"

namespace coda::darr {

CooperativeReport run_cooperative_fleet(std::size_t total_candidates,
                                        const FleetOptions& options,
                                        const ClientSession& session) {
  require(options.n_clients >= 1, "run_cooperative_fleet: need >= 1 client");
  const std::size_t n_clients = options.n_clients;

  dist::SimNet net;
  if (options.faults) net.set_faults(*options.faults);

  // Repository tier: one "darr" node, or a consistent-hash cluster of
  // shard nodes (DESIGN.md §13). Either way the clients only ever see a
  // RecordStore.
  std::unique_ptr<DarrRepository> repository;
  std::unique_ptr<DarrCluster> cluster;
  dist::NodeId repo_node = 0;
  if (options.n_shards == 0) {
    DarrRepository::Config repo_config;
    repo_config.claim_ttl_ms = options.claim_ttl_ms;
    repository = std::make_unique<DarrRepository>(repo_config);
    repo_node = net.add_node("darr");
  } else {
    DarrCluster::Config cluster_config;
    cluster_config.n_shards = options.n_shards;
    cluster_config.replication = options.replication;
    cluster_config.ring_points = options.ring_points;
    cluster_config.claim_ttl_ms = options.claim_ttl_ms;
    cluster_config.sync_retry = options.retry;
    cluster = std::make_unique<DarrCluster>(&net, cluster_config);
  }
  const dist::NodeId telemetry_node = net.add_node("telemetry");

  std::shared_ptr<obs::TelemetryCollector> collector;
  if (options.telemetry) {
    collector = std::make_shared<obs::TelemetryCollector>();
    for (const char* metric :
         {"evaluator.candidate.local", "evaluator.candidate.cached",
          "darr.client.lookups", "darr.client.hits", "darr.repo.store"}) {
      collector->track(metric);
    }
  }

  std::vector<std::unique_ptr<RecordStore>> services;
  std::vector<std::unique_ptr<DarrClient>> clients;
  std::vector<std::unique_ptr<dist::TelemetryReporter>> reporters;
  services.reserve(n_clients);
  clients.reserve(n_clients);
  for (std::size_t i = 0; i < n_clients; ++i) {
    const std::string name = "client" + std::to_string(i);
    const dist::NodeId node = net.add_node(name);
    if (cluster) {
      services.push_back(std::make_unique<ShardedDarrService>(
          cluster.get(), node, options.retry));
    } else {
      services.push_back(std::make_unique<SingleNodeDarrService>(
          repository.get(), &net, node, repo_node, options.retry));
    }
    clients.push_back(
        std::make_unique<DarrClient>(services.back().get(), name,
                                     options.retry));
    if (collector) {
      // Each client ships its own MetricScope shard to the collector node.
      reporters.push_back(std::make_unique<dist::TelemetryReporter>(
          &net, node, telemetry_node, collector.get(),
          &obs::MetricScope::for_node(name).registry(), name));
    }
  }
  if (collector) {
    // The repository tier reports too: the "darr" node, or every shard.
    if (cluster) {
      for (std::size_t s = 0; s < cluster->n_shards(); ++s) {
        const std::string& name = net.node_name(cluster->node(s));
        reporters.push_back(std::make_unique<dist::TelemetryReporter>(
            &net, cluster->node(s), telemetry_node, collector.get(),
            &obs::MetricScope::for_node(name).registry(), name));
      }
    } else {
      reporters.push_back(std::make_unique<dist::TelemetryReporter>(
          &net, repo_node, telemetry_node, collector.get(),
          &obs::MetricScope::for_node("darr").registry(), "darr"));
    }
  }

  CooperativeReport report;
  report.total_candidates = total_candidates;
  report.n_shards = options.n_shards;
  report.replication = cluster ? cluster->replication() : 1;
  report.clients.resize(n_clients);
  report.telemetry = collector;

  auto run_one = [&](std::size_t i) {
    // Spans from this thread (the evaluation root and everything under
    // it) belong to this simulated client's node.
    const obs::NodeScope node_scope(clients[i]->client_name());
    Stopwatch client_timer;
    ClientOutcome& outcome = report.clients[i];
    outcome.name = clients[i]->client_name();
    outcome.report = session(i, *clients[i]);
    outcome.evaluated_locally = outcome.report.evaluated_locally;
    outcome.served_from_cache = outcome.report.served_from_cache;
    outcome.seconds = client_timer.elapsed_seconds();
    // Ship this client's telemetry from its own thread: a deterministic
    // report point (end of evaluation) rather than a wall-clock timer,
    // so back-to-back runs send identical report counts. The profile
    // publish must precede the flush so the prof.* counters ride this
    // report; it writes the node shard and the process-wide registry in
    // equal increments (the describe_divergence invariant).
    if (collector) {
      obs::prof::publish_node(outcome.name);
      reporters[i]->flush();
    }
  };

  Stopwatch wall;
  const std::size_t n_workers =
      options.max_parallel_clients == 0
          ? n_clients
          : std::min(options.max_parallel_clients, n_clients);
  if (n_workers == n_clients) {
    // One thread per client: every session genuinely overlaps (the
    // original Fig-2 shape, and what the claim-contention metrics mean).
    std::vector<std::thread> threads;
    threads.reserve(n_clients);
    for (std::size_t i = 0; i < n_clients; ++i) {
      threads.emplace_back(run_one, i);
    }
    for (auto& t : threads) t.join();
  } else {
    // Bounded worker pool for fleet-scale runs: n_workers threads pull
    // client indices in order. n_workers == 1 runs the fleet serially —
    // fully deterministic, which is what exact bench entries need.
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> workers;
    workers.reserve(n_workers);
    for (std::size_t w = 0; w < n_workers; ++w) {
      workers.emplace_back([&] {
        for (std::size_t i = next.fetch_add(1); i < n_clients;
             i = next.fetch_add(1)) {
          run_one(i);
        }
      });
    }
    for (auto& t : workers) t.join();
  }
  report.wall_seconds = wall.elapsed_seconds();

  if (collector) {
    // Final sweep from the coordinating thread: the repository tier's
    // shard(s) plus a catch-up flush for every client (a no-op when
    // nothing changed since the client's own report; a retransmission
    // when that report was lost). Publish any profile remainders first so
    // the catch-up flush carries them (e.g. scopes that closed between a
    // client's own publish and its session end).
    obs::prof::publish_all();
    for (auto& reporter : reporters) reporter->flush();
    report.telemetry_divergence = collector->describe_divergence(
        obs::snapshot_registry(obs::MetricsRegistry::instance()));
  }

  for (std::size_t i = 0; i < n_clients; ++i) {
    report.clients[i].darr_stats = clients[i]->stats();
    report.total_local_evaluations += report.clients[i].evaluated_locally;
    report.redundancy_avoided += report.clients[i].served_from_cache;
  }
  report.redundant_evaluations =
      report.total_local_evaluations > report.total_candidates
          ? report.total_local_evaluations - report.total_candidates
          : 0;
  report.repository_counters =
      cluster ? cluster->counters() : repository->counters();
  if (cluster) report.sync_stats = cluster->sync_stats();
  report.bytes_on_wire = net.total().bytes;
  report.claim_wait_p99_seconds =
      obs::histogram("evaluator.claim.wait_seconds").quantile(0.99);
  return report;
}

CooperativeReport run_cooperative_search(const TEGraph& graph,
                                         const Dataset& data,
                                         const CrossValidator& cv,
                                         Metric metric,
                                         std::size_t n_clients,
                                         std::size_t evaluator_threads) {
  FleetOptions options;
  options.n_clients = n_clients;
  options.evaluator_threads = evaluator_threads;
  return run_cooperative_search(graph, data, cv, metric, options);
}

CooperativeReport run_cooperative_search(const TEGraph& graph,
                                         const Dataset& data,
                                         const CrossValidator& cv,
                                         Metric metric,
                                         const FleetOptions& options) {
  return run_cooperative_fleet(
      graph.enumerate_candidates().size(), options,
      [&](std::size_t, ResultCache& cache) {
        EvalOptions eval;
        eval.metric = metric;
        eval.threads = options.evaluator_threads;
        eval.cache = &cache;
        return GraphEvaluator(eval).evaluate(graph, data, *cv.clone());
      });
}

CooperativeReport run_cooperative_forecast_search(
    const ts::ForecastGraph& graph, const TimeSeries& series,
    const TimeSeriesSlidingSplit& cv, Metric metric,
    const FleetOptions& options) {
  return run_cooperative_fleet(
      graph.enumerate().size(), options,
      [&](std::size_t, ResultCache& cache) {
        EvalOptions eval;
        eval.metric = metric;
        eval.threads = options.evaluator_threads;
        eval.cache = &cache;
        return ts::ForecastGraphEvaluator(eval).evaluate(graph, series, cv);
      });
}

}  // namespace coda::darr
