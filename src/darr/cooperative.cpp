#include "src/darr/cooperative.h"

#include <memory>
#include <thread>

#include "src/obs/trace.h"
#include "src/util/stopwatch.h"

namespace coda::darr {

CooperativeReport run_cooperative_search(const TEGraph& graph,
                                         const Dataset& data,
                                         const CrossValidator& cv,
                                         Metric metric,
                                         std::size_t n_clients,
                                         std::size_t evaluator_threads) {
  require(n_clients >= 1, "run_cooperative_search: need >= 1 client");

  DarrRepository repository;
  dist::SimNet net;
  const dist::NodeId repo_node = net.add_node("darr");

  std::vector<std::unique_ptr<DarrClient>> clients;
  clients.reserve(n_clients);
  for (std::size_t i = 0; i < n_clients; ++i) {
    const std::string name = "client" + std::to_string(i);
    const dist::NodeId node = net.add_node(name);
    clients.push_back(std::make_unique<DarrClient>(&repository, &net, node,
                                                   repo_node, name));
  }

  CooperativeReport report;
  report.total_candidates = graph.enumerate_candidates().size();
  report.clients.resize(n_clients);

  Stopwatch wall;
  std::vector<std::thread> threads;
  threads.reserve(n_clients);
  for (std::size_t i = 0; i < n_clients; ++i) {
    threads.emplace_back([&, i] {
      // Spans from this thread (the evaluation root and everything under
      // it) belong to this simulated client's node.
      const obs::NodeScope node_scope(clients[i]->client_name());
      Stopwatch client_timer;
      EvalOptions config;
      config.metric = metric;
      config.threads = evaluator_threads;
      config.cache = clients[i].get();
      GraphEvaluator evaluator(config);
      ClientOutcome& outcome = report.clients[i];
      outcome.name = clients[i]->client_name();
      outcome.report = evaluator.evaluate(graph, data, *cv.clone());
      outcome.evaluated_locally = outcome.report.evaluated_locally;
      outcome.served_from_cache = outcome.report.served_from_cache;
      outcome.seconds = client_timer.elapsed_seconds();
    });
  }
  for (auto& t : threads) t.join();
  report.wall_seconds = wall.elapsed_seconds();

  for (std::size_t i = 0; i < n_clients; ++i) {
    report.clients[i].darr_stats = clients[i]->stats();
    report.total_local_evaluations += report.clients[i].evaluated_locally;
  }
  report.redundant_evaluations =
      report.total_local_evaluations > report.total_candidates
          ? report.total_local_evaluations - report.total_candidates
          : 0;
  report.repository_counters = repository.counters();
  return report;
}

}  // namespace coda::darr
