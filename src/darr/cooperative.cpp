#include "src/darr/cooperative.h"

#include <memory>
#include <thread>

#include "src/dist/telemetry.h"
#include "src/obs/timeseries.h"
#include "src/obs/trace.h"
#include "src/util/stopwatch.h"

namespace coda::darr {

CooperativeReport run_cooperative_search(const TEGraph& graph,
                                         const Dataset& data,
                                         const CrossValidator& cv,
                                         Metric metric,
                                         std::size_t n_clients,
                                         std::size_t evaluator_threads) {
  require(n_clients >= 1, "run_cooperative_search: need >= 1 client");

  DarrRepository repository;
  dist::SimNet net;
  const dist::NodeId repo_node = net.add_node("darr");
  const dist::NodeId telemetry_node = net.add_node("telemetry");

  auto collector = std::make_shared<obs::TelemetryCollector>();
  for (const char* metric :
       {"evaluator.candidate.local", "evaluator.candidate.cached",
        "darr.client.lookups", "darr.client.hits", "darr.repo.store"}) {
    collector->track(metric);
  }

  std::vector<std::unique_ptr<DarrClient>> clients;
  std::vector<std::unique_ptr<dist::TelemetryReporter>> reporters;
  clients.reserve(n_clients);
  reporters.reserve(n_clients + 1);
  for (std::size_t i = 0; i < n_clients; ++i) {
    const std::string name = "client" + std::to_string(i);
    const dist::NodeId node = net.add_node(name);
    clients.push_back(std::make_unique<DarrClient>(&repository, &net, node,
                                                   repo_node, name));
    // Each client ships its own MetricScope shard to the collector node.
    reporters.push_back(std::make_unique<dist::TelemetryReporter>(
        &net, node, telemetry_node, collector.get(),
        &obs::MetricScope::for_node(name).registry(), name));
  }
  reporters.push_back(std::make_unique<dist::TelemetryReporter>(
      &net, repo_node, telemetry_node, collector.get(),
      &obs::MetricScope::for_node("darr").registry(), "darr"));

  CooperativeReport report;
  report.total_candidates = graph.enumerate_candidates().size();
  report.clients.resize(n_clients);
  report.telemetry = collector;

  Stopwatch wall;
  std::vector<std::thread> threads;
  threads.reserve(n_clients);
  for (std::size_t i = 0; i < n_clients; ++i) {
    threads.emplace_back([&, i] {
      // Spans from this thread (the evaluation root and everything under
      // it) belong to this simulated client's node.
      const obs::NodeScope node_scope(clients[i]->client_name());
      Stopwatch client_timer;
      EvalOptions config;
      config.metric = metric;
      config.threads = evaluator_threads;
      config.cache = clients[i].get();
      GraphEvaluator evaluator(config);
      ClientOutcome& outcome = report.clients[i];
      outcome.name = clients[i]->client_name();
      outcome.report = evaluator.evaluate(graph, data, *cv.clone());
      outcome.evaluated_locally = outcome.report.evaluated_locally;
      outcome.served_from_cache = outcome.report.served_from_cache;
      outcome.seconds = client_timer.elapsed_seconds();
      // Ship this client's telemetry from its own thread: a deterministic
      // report point (end of evaluation) rather than a wall-clock timer,
      // so back-to-back runs send identical report counts.
      reporters[i]->flush();
    });
  }
  for (auto& t : threads) t.join();
  report.wall_seconds = wall.elapsed_seconds();

  // Final sweep from the coordinating thread: the repository's shard plus
  // a catch-up flush for every client (a no-op when nothing changed since
  // the client's own report; a retransmission when that report was lost).
  for (auto& reporter : reporters) reporter->flush();
  report.telemetry_divergence = collector->describe_divergence(
      obs::snapshot_registry(obs::MetricsRegistry::instance()));

  for (std::size_t i = 0; i < n_clients; ++i) {
    report.clients[i].darr_stats = clients[i]->stats();
    report.total_local_evaluations += report.clients[i].evaluated_locally;
  }
  report.redundant_evaluations =
      report.total_local_evaluations > report.total_candidates
          ? report.total_local_evaluations - report.total_candidates
          : 0;
  report.repository_counters = repository.counters();
  return report;
}

}  // namespace coda::darr
