#include "src/darr/record_store.h"

#include "src/darr/repository.h"
#include "src/dist/retry.h"
#include "src/obs/trace.h"

namespace coda::darr {

std::vector<std::optional<DarrRecord>> RecordStore::fetch_many(
    const std::vector<std::string>& keys, Wire& wire) {
  std::vector<std::optional<DarrRecord>> out;
  out.reserve(keys.size());
  for (const auto& key : keys) out.push_back(fetch(key, wire));
  return out;
}

SingleNodeDarrService::SingleNodeDarrService(DarrRepository* repository,
                                             dist::SimNet* net,
                                             dist::NodeId self,
                                             dist::NodeId repo_node,
                                             RetryPolicy retry)
    : repository_(repository),
      net_(net),
      self_(self),
      repo_node_(repo_node),
      retry_(retry) {
  require(repository != nullptr && net != nullptr,
          "SingleNodeDarrService: null dependency");
  retry_.validate();
  require(self != repo_node,
          "SingleNodeDarrService: client and repository must be distinct "
          "nodes");
}

std::optional<DarrRecord> SingleNodeDarrService::fetch(const std::string& key,
                                                       Wire& wire) {
  const std::size_t request = key_request_size(key);
  dist::transfer_with_retry(*net_, self_, repo_node_, request, retry_,
                            "darr.lookup");
  std::optional<DarrRecord> record;
  {
    // Repository work is simulated inline but belongs to the repo node.
    obs::ScopedSpan repo_span("darr.repo.lookup");
    repo_span.set_node(net_->node_name(repo_node_));
    record = repository_->lookup(key);
  }
  const std::size_t response =
      record ? record->wire_size() : kMessageOverhead;  // 16 = "not found"
  dist::transfer_with_retry(*net_, repo_node_, self_, response, retry_,
                            "darr.lookup");
  wire.bytes_sent += request;
  wire.bytes_received += response;
  return record;
}

std::vector<std::optional<DarrRecord>> SingleNodeDarrService::fetch_many(
    const std::vector<std::string>& keys, Wire& wire) {
  std::size_t request = 0;
  for (const auto& key : keys) request += key_request_size(key);
  dist::transfer_with_retry(*net_, self_, repo_node_, request, retry_,
                            "darr.lookup_many");
  std::vector<std::optional<DarrRecord>> out;
  out.reserve(keys.size());
  std::size_t response = 0;
  {
    obs::ScopedSpan repo_span("darr.repo.lookup_many");
    repo_span.set_node(net_->node_name(repo_node_));
    for (const auto& key : keys) {
      auto record = repository_->lookup(key);
      response += record ? record->wire_size() : kMessageOverhead;
      out.push_back(std::move(record));
    }
  }
  dist::transfer_with_retry(*net_, repo_node_, self_, response, retry_,
                            "darr.lookup_many");
  wire.bytes_sent += request;
  wire.bytes_received += response;
  return out;
}

bool SingleNodeDarrService::claim(const std::string& key,
                                  const std::string& client, Wire& wire) {
  const std::size_t request = key_request_size(key) + client.size();
  dist::transfer_with_retry(*net_, self_, repo_node_, request, retry_,
                            "darr.try_claim");
  bool granted = false;
  {
    obs::ScopedSpan repo_span("darr.repo.try_claim");
    repo_span.set_node(net_->node_name(repo_node_));
    granted = repository_->try_claim(key, client);
    repo_span.tag("granted", granted ? "1" : "0");
  }
  // The lease exists repository-side from here on: even if the response
  // below is lost past the retry budget, the caller must track the grant.
  wire.applied = granted;
  dist::transfer_with_retry(*net_, repo_node_, self_, kMessageOverhead,
                            retry_, "darr.try_claim");
  wire.bytes_sent += request;
  wire.bytes_received += kMessageOverhead;
  return granted;
}

void SingleNodeDarrService::put(DarrRecord record, Wire& wire) {
  const std::size_t request = record.wire_size();
  dist::transfer_with_retry(*net_, self_, repo_node_, request, retry_,
                            "darr.store");
  {
    obs::ScopedSpan repo_span("darr.repo.store");
    repo_span.set_node(net_->node_name(repo_node_));
    repository_->store(std::move(record), net_->now());
  }
  wire.applied = true;  // stored (and claim released) repository-side
  dist::transfer_with_retry(*net_, repo_node_, self_, kMessageOverhead,
                            retry_, "darr.store");
  wire.bytes_sent += request;
  wire.bytes_received += kMessageOverhead;
}

void SingleNodeDarrService::release(const std::string& key,
                                    const std::string& client, Wire& wire) {
  const std::size_t request = key_request_size(key) + client.size();
  dist::transfer_with_retry(*net_, self_, repo_node_, request, retry_,
                            "darr.abandon");
  {
    obs::ScopedSpan repo_span("darr.repo.abandon");
    repo_span.set_node(net_->node_name(repo_node_));
    repository_->abandon(key, client);
  }
  wire.applied = true;  // claim gone repository-side
  dist::transfer_with_retry(*net_, repo_node_, self_, kMessageOverhead,
                            retry_, "darr.abandon");
  wire.bytes_sent += request;
  wire.bytes_received += kMessageOverhead;
}

std::size_t SingleNodeDarrService::n_records() const {
  return repository_->size();
}

}  // namespace coda::darr
