#include "src/darr/repository.h"

#include "src/util/error.h"

namespace coda::darr {

DarrRepository::DarrRepository() : DarrRepository(Config()) {}

DarrRepository::DarrRepository(Config config) : config_(config) {
  require(config.claim_ttl_ms > 0, "DarrRepository: TTL must be positive");
}

std::optional<DarrRecord> DarrRepository::lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.lookups;
  auto it = records_.find(key);
  if (it == records_.end()) return std::nullopt;
  ++counters_.hits;
  return it->second;
}

bool DarrRepository::try_claim(const std::string& key,
                               const std::string& client) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (records_.count(key) != 0) {
    // Result already exists; claiming is pointless — deny so the caller
    // looks it up instead.
    ++counters_.claims_denied;
    return false;
  }
  const auto now = std::chrono::steady_clock::now();
  auto it = claims_.find(key);
  if (it != claims_.end()) {
    if (it->second.client == client) {
      it->second.expires_at =
          now + std::chrono::milliseconds(config_.claim_ttl_ms);
      return true;  // idempotent re-claim
    }
    if (it->second.expires_at > now) {
      ++counters_.claims_denied;
      return false;  // live foreign claim
    }
    ++counters_.claims_expired;  // owner presumed dead: steal the claim
  }
  claims_[key] = Claim{
      client, now + std::chrono::milliseconds(config_.claim_ttl_ms)};
  ++counters_.claims_granted;
  return true;
}

void DarrRepository::store(DarrRecord record, double stored_at_sim_time) {
  std::lock_guard<std::mutex> lock(mutex_);
  require(!record.key.empty(), "DarrRepository: record without a key");
  record.stored_at = stored_at_sim_time;
  claims_.erase(record.key);
  records_[record.key] = std::move(record);
  ++counters_.stores;
}

void DarrRepository::abandon(const std::string& key,
                             const std::string& client) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = claims_.find(key);
  if (it != claims_.end() && it->second.client == client) claims_.erase(it);
}

std::size_t DarrRepository::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

std::vector<std::string> DarrRepository::keys_with_prefix(
    const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  for (auto it = records_.lower_bound(prefix); it != records_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

std::size_t DarrRepository::records_by(const std::string& producer) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& [key, record] : records_) {
    if (record.producer == producer) ++n;
  }
  return n;
}

DarrRepository::Counters DarrRepository::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

}  // namespace coda::darr
