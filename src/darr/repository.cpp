#include "src/darr/repository.h"

#include <atomic>

#include "src/obs/event_log.h"
#include "src/util/error.h"

namespace coda::darr {

namespace {

// Aggregate repository families (all instances in the process).
struct GlobalCounters {
  obs::Counter& lookup_hit = obs::counter("darr.repo.lookup.hit");
  obs::Counter& lookup_miss = obs::counter("darr.repo.lookup.miss");
  obs::Counter& store = obs::counter("darr.repo.store");
  obs::Counter& claims_granted = obs::counter("darr.claim.granted");
  obs::Counter& claims_denied = obs::counter("darr.claim.denied");
  obs::Counter& claims_expired = obs::counter("darr.claim.expired");
};

GlobalCounters& global_counters() {
  static GlobalCounters counters;
  return counters;
}

std::string next_instance_prefix() {
  // Central id source: obs::reset_all() rewinds it so back-to-back runs
  // in one process mint identical instance names.
  return "darr.repo#" + std::to_string(obs::next_instance_id("darr.repo")) +
         ".";
}

}  // namespace

DarrRepository::DarrRepository() : DarrRepository(Config()) {}

DarrRepository::DarrRepository(Config config) : config_(std::move(config)) {
  require(config_.claim_ttl_ms > 0, "DarrRepository: TTL must be positive");
  require(!config_.node_name.empty(),
          "DarrRepository: node_name must be non-empty");
  const std::string prefix = next_instance_prefix();
  counters_.lookups = &obs::counter(prefix + "lookups");
  counters_.hits = &obs::counter(prefix + "hits");
  counters_.stores = &obs::counter(prefix + "stores");
  counters_.claims_granted = &obs::counter(prefix + "claims_granted");
  counters_.claims_denied = &obs::counter(prefix + "claims_denied");
  counters_.claims_expired = &obs::counter(prefix + "claims_expired");
  auto& g = global_counters();
  auto& scope = obs::MetricScope::for_node(config_.node_name);
  family_.lookup_hit = {&g.lookup_hit, &scope.counter("darr.repo.lookup.hit")};
  family_.lookup_miss = {&g.lookup_miss,
                         &scope.counter("darr.repo.lookup.miss")};
  family_.store = {&g.store, &scope.counter("darr.repo.store")};
  family_.claims_granted = {&g.claims_granted,
                            &scope.counter("darr.claim.granted")};
  family_.claims_denied = {&g.claims_denied,
                           &scope.counter("darr.claim.denied")};
  family_.claims_expired = {&g.claims_expired,
                            &scope.counter("darr.claim.expired")};
}

std::optional<DarrRecord> DarrRepository::lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.lookups->inc();
  auto it = records_.find(key);
  if (it == records_.end()) {
    family_.lookup_miss.inc();
    return std::nullopt;
  }
  counters_.hits->inc();
  family_.lookup_hit.inc();
  return it->second;
}

bool DarrRepository::try_claim(const std::string& key,
                               const std::string& client) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (records_.count(key) != 0) {
    // Result already exists; claiming is pointless — deny so the caller
    // looks it up instead.
    counters_.claims_denied->inc();
    family_.claims_denied.inc();
    return false;
  }
  const auto now = std::chrono::steady_clock::now();
  auto it = claims_.find(key);
  if (it != claims_.end()) {
    if (it->second.client == client) {
      it->second.expires_at =
          now + std::chrono::milliseconds(config_.claim_ttl_ms);
      return true;  // idempotent re-claim
    }
    if (it->second.expires_at > now) {
      counters_.claims_denied->inc();
      family_.claims_denied.inc();
      return false;  // live foreign claim
    }
    // Owner presumed dead: steal the claim.
    counters_.claims_expired->inc();
    family_.claims_expired.inc();
    obs::event(obs::Severity::kWarn, "darr.claim.expired",
               {{"key", key},
                {"stale_owner", it->second.client},
                {"stolen_by", client}});
  }
  claims_[key] = Claim{
      client, now + std::chrono::milliseconds(config_.claim_ttl_ms)};
  counters_.claims_granted->inc();
  family_.claims_granted.inc();
  return true;
}

void DarrRepository::store(DarrRecord record, double stored_at_sim_time) {
  std::lock_guard<std::mutex> lock(mutex_);
  require(!record.key.empty(), "DarrRepository: record without a key");
  record.stored_at = stored_at_sim_time;
  claims_.erase(record.key);
  records_[record.key] = std::move(record);
  counters_.stores->inc();
  family_.store.inc();
}

void DarrRepository::abandon(const std::string& key,
                             const std::string& client) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = claims_.find(key);
  if (it != claims_.end() && it->second.client == client) claims_.erase(it);
}

std::size_t DarrRepository::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

std::vector<std::string> DarrRepository::keys_with_prefix(
    const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  for (auto it = records_.lower_bound(prefix); it != records_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

std::size_t DarrRepository::records_by(const std::string& producer) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& [key, record] : records_) {
    if (record.producer == producer) ++n;
  }
  return n;
}

std::optional<DarrRecord> DarrRepository::fetch(const std::string& key,
                                                Wire& wire) {
  (void)wire;  // in-process: no simulated traffic
  return lookup(key);
}

bool DarrRepository::claim(const std::string& key, const std::string& client,
                           Wire& wire) {
  const bool granted = try_claim(key, client);
  wire.applied = granted;
  return granted;
}

void DarrRepository::put(DarrRecord record, Wire& wire) {
  store(std::move(record));
  wire.applied = true;
}

void DarrRepository::release(const std::string& key,
                             const std::string& client, Wire& wire) {
  abandon(key, client);
  wire.applied = true;
}

DarrRepository::Counters DarrRepository::counters() const {
  Counters out;
  out.lookups = counters_.lookups->value();
  out.hits = counters_.hits->value();
  out.stores = counters_.stores->value();
  out.claims_granted = counters_.claims_granted->value();
  out.claims_denied = counters_.claims_denied->value();
  out.claims_expired = counters_.claims_expired->value();
  return out;
}

}  // namespace coda::darr
