#include "src/darr/record.h"

namespace coda::darr {

std::size_t DarrRecord::wire_size() const { return serialize().size(); }

Bytes DarrRecord::serialize() const {
  ByteWriter w;
  w.write_string(key);
  w.write_double(mean_score);
  w.write_double(stddev);
  w.write_doubles(fold_scores);
  w.write_string(explanation);
  w.write_string(producer);
  w.write_double(stored_at);
  return w.take();
}

DarrRecord DarrRecord::deserialize(const Bytes& buffer) {
  ByteReader r(buffer);
  DarrRecord record;
  record.key = r.read_string();
  record.mean_score = r.read_double();
  record.stddev = r.read_double();
  record.fold_scores = r.read_doubles();
  record.explanation = r.read_string();
  record.producer = r.read_string();
  record.stored_at = r.read_double();
  if (!r.exhausted()) throw DecodeError("DarrRecord: trailing bytes");
  return record;
}

}  // namespace coda::darr
