// The Data Analytics Results Repository (Section III, Fig 2): a cloud-
// resident store that multiple clients read and write so they can share
// results and avoid redundant calculations.
//
// Cooperation protocol: before computing a calculation, a client claims its
// key. A live claim tells other clients the result is on its way, so they
// work on something else (or wait). Claims expire after a TTL — a client
// that crashes mid-computation does not block the key forever (failure
// injection for this case is exercised in the tests).
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/darr/record.h"
#include "src/darr/record_store.h"
#include "src/obs/metrics.h"

namespace coda::darr {

/// Thread-safe repository of analytics results with expiring claims. Also
/// the in-process RecordStore implementation (DESIGN.md §13): fetch/claim/
/// put/release map onto lookup/try_claim/store/abandon with no simulated
/// traffic, so tests and single-process tools can drive the unified surface
/// without a SimNet.
class DarrRepository : public RecordStore {
 public:
  struct Config {
    /// Claim time-to-live, in wall-clock milliseconds (claims coordinate
    /// concurrently running client threads).
    int claim_ttl_ms = 2000;
    /// SimNet node this repository represents for fleet telemetry: the
    /// `darr.repo.*` / `darr.claim.*` families are dual-written into
    /// obs::MetricScope::for_node(node_name) alongside the process-wide
    /// registry.
    std::string node_name = "darr";
  };

  /// Per-instance counter snapshot. Backed by the obs::MetricsRegistry
  /// (each repository registers `darr.repo#<n>.*` counters); this struct
  /// is a point-in-time view, kept for API compatibility.
  struct Counters {
    std::size_t lookups = 0;
    std::size_t hits = 0;
    std::size_t stores = 0;
    std::size_t claims_granted = 0;
    std::size_t claims_denied = 0;   ///< redundant work avoided
    std::size_t claims_expired = 0;  ///< claims stolen after owner timeout
  };

  DarrRepository();
  explicit DarrRepository(Config config);

  /// Returns the record for `key`, if stored.
  std::optional<DarrRecord> lookup(const std::string& key);

  /// Attempts to claim `key` for `client`. Returns true when the claim is
  /// granted (no record yet and no live foreign claim). A client re-claims
  /// its own key idempotently.
  bool try_claim(const std::string& key, const std::string& client);

  /// Stores a record (releases any claim on its key).
  void store(DarrRecord record, double stored_at_sim_time = 0.0);

  /// Releases `client`'s claim without storing (local failure).
  void abandon(const std::string& key, const std::string& client);

  std::size_t size() const;

  /// Keys of every stored record whose key begins with `prefix` — this is
  /// how clients "determine which calculations have been run for a certain
  /// data set" (prefix = the dataset fingerprint).
  std::vector<std::string> keys_with_prefix(const std::string& prefix) const;

  /// Records stored by a given producer (per-client contribution stats).
  std::size_t records_by(const std::string& producer) const;

  Counters counters() const;

  // RecordStore surface (in-process: zero wire bytes, applied on return).
  std::optional<DarrRecord> fetch(const std::string& key, Wire& wire) override;
  bool claim(const std::string& key, const std::string& client,
             Wire& wire) override;
  void put(DarrRecord record, Wire& wire) override;
  void release(const std::string& key, const std::string& client,
               Wire& wire) override;
  std::size_t n_records() const override { return size(); }

 private:
  struct Claim {
    std::string client;
    std::chrono::steady_clock::time_point expires_at;
  };

  /// This instance's registry-backed counters (`darr.repo#<n>.*`).
  struct InstanceCounters {
    obs::Counter* lookups = nullptr;
    obs::Counter* hits = nullptr;
    obs::Counter* stores = nullptr;
    obs::Counter* claims_granted = nullptr;
    obs::Counter* claims_denied = nullptr;
    obs::Counter* claims_expired = nullptr;
  };

  /// Process-wide family counters paired with this node's shard (fleet
  /// telemetry): one inc() hits both registries.
  struct FamilyCounters {
    obs::ScopedCounter lookup_hit;
    obs::ScopedCounter lookup_miss;
    obs::ScopedCounter store;
    obs::ScopedCounter claims_granted;
    obs::ScopedCounter claims_denied;
    obs::ScopedCounter claims_expired;
  };

  Config config_;
  mutable std::mutex mutex_;
  std::map<std::string, DarrRecord> records_;
  std::map<std::string, Claim> claims_;
  InstanceCounters counters_;
  FamilyCounters family_;
};

}  // namespace coda::darr
