#include "src/darr/client.h"

#include <atomic>

#include "src/obs/profiler.h"
#include "src/obs/trace.h"
#include "src/util/error.h"

namespace coda::darr {

namespace {

std::string next_instance_prefix() {
  // Central id source: obs::reset_all() rewinds it so back-to-back runs
  // in one process mint identical instance names.
  return "darr.client#" +
         std::to_string(obs::next_instance_id("darr.client")) + ".";
}

CachedResult to_cached(const DarrRecord& record) {
  CachedResult result;
  result.mean_score = record.mean_score;
  result.stddev = record.stddev;
  result.fold_scores = record.fold_scores;
  result.explanation = record.explanation;
  return result;
}

}  // namespace

DarrClient::DarrClient(RecordStore* store, std::string client_name,
                       RetryPolicy retry)
    : store_(store), name_(std::move(client_name)), retry_(retry) {
  require(store != nullptr, "DarrClient: null record store");
  retry_.validate();
  require(!name_.empty(), "DarrClient: client name must be non-empty");
  const std::string prefix = next_instance_prefix();
  stats_.lookups = &obs::counter(prefix + "lookups");
  stats_.hits = &obs::counter(prefix + "hits");
  stats_.claims_won = &obs::counter(prefix + "claims_won");
  stats_.claims_lost = &obs::counter(prefix + "claims_lost");
  stats_.stores = &obs::counter(prefix + "stores");
  stats_.bytes_sent = &obs::counter(prefix + "bytes_sent");
  stats_.bytes_received = &obs::counter(prefix + "bytes_received");
  // Fleet telemetry: the darr.client.* families write the process-wide
  // registry AND this client's node shard through one handle.
  auto& scope = obs::MetricScope::for_node(name_);
  const auto family = [&scope](const char* name) {
    return obs::ScopedCounter(&obs::counter(name), &scope.counter(name));
  };
  family_.lookups = family("darr.client.lookups");
  family_.hits = family("darr.client.hits");
  family_.claims_won = family("darr.client.claims_won");
  family_.claims_lost = family("darr.client.claims_lost");
  family_.stores = family("darr.client.stores");
  family_.bytes_sent = family("darr.client.bytes_sent");
  family_.bytes_received = family("darr.client.bytes_received");
}

DarrClient::DarrClient(std::unique_ptr<RecordStore> owned_store,
                       std::string client_name, RetryPolicy retry)
    : DarrClient(owned_store.get(), std::move(client_name), retry) {
  owned_store_ = std::move(owned_store);
}

DarrClient::DarrClient(DarrRepository* repository, dist::SimNet* net,
                       dist::NodeId self, dist::NodeId repo_node,
                       std::string client_name, RetryPolicy retry)
    : DarrClient(std::make_unique<SingleNodeDarrService>(
                     repository, net, self, repo_node, retry),
                 std::move(client_name), retry) {}

void DarrClient::count_traffic(const Wire& wire) {
  stats_.bytes_sent->inc(wire.bytes_sent);
  stats_.bytes_received->inc(wire.bytes_received);
  family_.bytes_sent.inc(wire.bytes_sent);
  family_.bytes_received.inc(wire.bytes_received);
}

void DarrClient::track_claim(const std::string& key) {
  std::lock_guard<std::mutex> lock(held_mutex_);
  held_claims_.insert(key);
}

void DarrClient::untrack_claim(const std::string& key) {
  std::lock_guard<std::mutex> lock(held_mutex_);
  held_claims_.erase(key);
}

std::optional<CachedResult> DarrClient::fetch(const std::string& key) {
  PROF_SCOPE("darr.client.fetch");
  obs::ScopedSpan op_span("darr.client.lookup");
  Wire wire;
  const auto record = store_->fetch(key, wire);
  stats_.lookups->inc();
  family_.lookups.inc();
  if (record) {
    stats_.hits->inc();
    family_.hits.inc();
  }
  count_traffic(wire);
  if (!record) return std::nullopt;
  return to_cached(*record);
}

std::vector<std::optional<CachedResult>> DarrClient::fetch_many(
    const std::vector<std::string>& keys) {
  if (keys.empty()) return {};
  PROF_SCOPE("darr.client.fetch_many");
  obs::ScopedSpan op_span("darr.client.lookup_many");
  op_span.tag("keys", std::to_string(keys.size()));
  Wire wire;
  const auto records = store_->fetch_many(keys, wire);
  std::vector<std::optional<CachedResult>> out;
  out.reserve(records.size());
  std::size_t found = 0;
  for (const auto& record : records) {
    if (record) {
      ++found;
      out.push_back(to_cached(*record));
    } else {
      out.push_back(std::nullopt);
    }
  }
  stats_.lookups->inc(keys.size());
  stats_.hits->inc(found);
  family_.lookups.inc(keys.size());
  family_.hits.inc(found);
  count_traffic(wire);
  return out;
}

bool DarrClient::claim(const std::string& key) {
  PROF_SCOPE("darr.client.claim");
  obs::ScopedSpan op_span("darr.client.try_claim");
  Wire wire;
  bool granted = false;
  try {
    granted = store_->claim(key, name_, wire);
  } catch (...) {
    // The grant may have been applied store-side before the response leg
    // was lost: track it, or abandon_all() could never release the lease.
    if (wire.applied) track_claim(key);
    throw;
  }
  if (granted) track_claim(key);
  if (granted) {
    stats_.claims_won->inc();
    family_.claims_won.inc();
  } else {
    stats_.claims_lost->inc();
    family_.claims_lost.inc();
  }
  count_traffic(wire);
  return granted;
}

void DarrClient::put(const std::string& key, const CachedResult& result) {
  DarrRecord record;
  record.key = key;
  record.mean_score = result.mean_score;
  record.stddev = result.stddev;
  record.fold_scores = result.fold_scores;
  record.explanation = result.explanation;
  record.producer = name_;
  PROF_SCOPE("darr.client.put");
  obs::ScopedSpan op_span("darr.client.store");
  Wire wire;
  try {
    store_->put(std::move(record), wire);
  } catch (...) {
    // Storing released the claim store-side even if the response was lost.
    if (wire.applied) untrack_claim(key);
    throw;
  }
  untrack_claim(key);
  stats_.stores->inc();
  family_.stores.inc();
  count_traffic(wire);
}

void DarrClient::release(const std::string& key) {
  PROF_SCOPE("darr.client.release");
  obs::ScopedSpan op_span("darr.client.abandon");
  Wire wire;
  try {
    store_->release(key, name_, wire);
  } catch (...) {
    if (wire.applied) untrack_claim(key);
    throw;
  }
  untrack_claim(key);
  count_traffic(wire);
}

void DarrClient::abandon_all() {
  static auto& abandoned = obs::counter("darr.client.claims_abandoned");
  for (std::size_t pass = 0; pass < retry_.max_attempts; ++pass) {
    std::vector<std::string> held = held_claims();
    if (held.empty()) return;
    bool all_released = true;
    for (const auto& key : held) {
      try {
        release(key);
        abandoned.inc();
      } catch (const NetworkError&) {
        // Release RPC exhausted its transfer budget. Two distinct cases:
        // the store may still have applied the release before the
        // response leg died — release() untracks the key in that case,
        // and the claim IS freed, so it must be counted exactly once
        // here (the next pass will not see it again). Otherwise the key
        // stays tracked and the next pass retries; each inner retry's
        // backoff charged the logical clock, so a transient partition or
        // crash window may have healed for that next pass.
        if (!holds_claim(key)) {
          abandoned.inc();
        } else {
          all_released = false;
        }
      }
    }
    if (all_released) return;
  }
}

std::vector<std::string> DarrClient::held_claims() const {
  std::lock_guard<std::mutex> lock(held_mutex_);
  return {held_claims_.begin(), held_claims_.end()};
}

bool DarrClient::holds_claim(const std::string& key) const {
  std::lock_guard<std::mutex> lock(held_mutex_);
  return held_claims_.count(key) != 0;
}

DarrClient::Stats DarrClient::stats() const {
  Stats out;
  out.lookups = stats_.lookups->value();
  out.hits = stats_.hits->value();
  out.claims_won = stats_.claims_won->value();
  out.claims_lost = stats_.claims_lost->value();
  out.stores = stats_.stores->value();
  out.bytes_sent = stats_.bytes_sent->value();
  out.bytes_received = stats_.bytes_received->value();
  return out;
}

}  // namespace coda::darr
