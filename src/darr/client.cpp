#include "src/darr/client.h"

namespace coda::darr {

DarrClient::DarrClient(DarrRepository* repository, dist::SimNet* net,
                       dist::NodeId self, dist::NodeId repo_node,
                       std::string client_name)
    : repository_(repository),
      net_(net),
      self_(self),
      repo_node_(repo_node),
      name_(std::move(client_name)) {
  require(repository != nullptr && net != nullptr,
          "DarrClient: null dependency");
  require(self != repo_node,
          "DarrClient: client and repository must be distinct nodes");
  require(!name_.empty(), "DarrClient: client name must be non-empty");
}

std::optional<CachedResult> DarrClient::lookup(const std::string& key) {
  const std::size_t request = key_request_size(key);
  net_->transfer(self_, repo_node_, request);
  auto record = repository_->lookup(key);
  std::size_t response = 16;  // "not found"
  std::optional<CachedResult> out;
  if (record) {
    response = record->wire_size();
    CachedResult result;
    result.mean_score = record->mean_score;
    result.stddev = record->stddev;
    result.fold_scores = record->fold_scores;
    result.explanation = record->explanation;
    out = std::move(result);
  }
  net_->transfer(repo_node_, self_, response);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.lookups;
    if (out) ++stats_.hits;
    stats_.bytes_sent += request;
    stats_.bytes_received += response;
  }
  return out;
}

bool DarrClient::try_claim(const std::string& key) {
  const std::size_t request = key_request_size(key) + name_.size();
  net_->transfer(self_, repo_node_, request);
  const bool granted = repository_->try_claim(key, name_);
  net_->transfer(repo_node_, self_, 16);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (granted) {
      ++stats_.claims_won;
    } else {
      ++stats_.claims_lost;
    }
    stats_.bytes_sent += request;
    stats_.bytes_received += 16;
  }
  return granted;
}

void DarrClient::store(const std::string& key, const CachedResult& result) {
  DarrRecord record;
  record.key = key;
  record.mean_score = result.mean_score;
  record.stddev = result.stddev;
  record.fold_scores = result.fold_scores;
  record.explanation = result.explanation;
  record.producer = name_;
  const std::size_t request = record.wire_size();
  net_->transfer(self_, repo_node_, request);
  repository_->store(std::move(record), net_->now());
  net_->transfer(repo_node_, self_, 16);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.stores;
    stats_.bytes_sent += request;
    stats_.bytes_received += 16;
  }
}

void DarrClient::abandon(const std::string& key) {
  const std::size_t request = key_request_size(key) + name_.size();
  net_->transfer(self_, repo_node_, request);
  repository_->abandon(key, name_);
  net_->transfer(repo_node_, self_, 16);
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.bytes_sent += request;
  stats_.bytes_received += 16;
}

DarrClient::Stats DarrClient::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace coda::darr
