#include "src/darr/client.h"

#include <atomic>

#include "src/dist/retry.h"
#include "src/obs/trace.h"

namespace coda::darr {

namespace {

std::string next_instance_prefix() {
  // Central id source: obs::reset_all() rewinds it so back-to-back runs
  // in one process mint identical instance names.
  return "darr.client#" +
         std::to_string(obs::next_instance_id("darr.client")) + ".";
}

}  // namespace

DarrClient::DarrClient(DarrRepository* repository, dist::SimNet* net,
                       dist::NodeId self, dist::NodeId repo_node,
                       std::string client_name, RetryPolicy retry)
    : repository_(repository),
      net_(net),
      self_(self),
      repo_node_(repo_node),
      name_(std::move(client_name)),
      retry_(retry) {
  require(repository != nullptr && net != nullptr,
          "DarrClient: null dependency");
  retry_.validate();
  require(self != repo_node,
          "DarrClient: client and repository must be distinct nodes");
  require(!name_.empty(), "DarrClient: client name must be non-empty");
  const std::string prefix = next_instance_prefix();
  stats_.lookups = &obs::counter(prefix + "lookups");
  stats_.hits = &obs::counter(prefix + "hits");
  stats_.claims_won = &obs::counter(prefix + "claims_won");
  stats_.claims_lost = &obs::counter(prefix + "claims_lost");
  stats_.stores = &obs::counter(prefix + "stores");
  stats_.bytes_sent = &obs::counter(prefix + "bytes_sent");
  stats_.bytes_received = &obs::counter(prefix + "bytes_received");
  // Fleet telemetry: the darr.client.* families write the process-wide
  // registry AND this client's node shard through one handle.
  auto& scope = obs::MetricScope::for_node(name_);
  const auto family = [&scope](const char* name) {
    return obs::ScopedCounter(&obs::counter(name), &scope.counter(name));
  };
  family_.lookups = family("darr.client.lookups");
  family_.hits = family("darr.client.hits");
  family_.claims_won = family("darr.client.claims_won");
  family_.claims_lost = family("darr.client.claims_lost");
  family_.stores = family("darr.client.stores");
  family_.bytes_sent = family("darr.client.bytes_sent");
  family_.bytes_received = family("darr.client.bytes_received");
}

std::optional<CachedResult> DarrClient::lookup(const std::string& key) {
  obs::ScopedSpan op_span("darr.client.lookup");
  const std::size_t request = key_request_size(key);
  dist::transfer_with_retry(*net_, self_, repo_node_, request, retry_,
                            "darr.lookup");
  std::optional<DarrRecord> record;
  {
    // Repository work is simulated inline but belongs to the repo node.
    obs::ScopedSpan repo_span("darr.repo.lookup", op_span.context());
    repo_span.set_node(net_->node_name(repo_node_));
    record = repository_->lookup(key);
  }
  std::size_t response = 16;  // "not found"
  std::optional<CachedResult> out;
  if (record) {
    response = record->wire_size();
    CachedResult result;
    result.mean_score = record->mean_score;
    result.stddev = record->stddev;
    result.fold_scores = record->fold_scores;
    result.explanation = record->explanation;
    out = std::move(result);
  }
  dist::transfer_with_retry(*net_, repo_node_, self_, response, retry_,
                            "darr.lookup");
  stats_.lookups->inc();
  family_.lookups.inc();
  if (out) {
    stats_.hits->inc();
    family_.hits.inc();
  }
  stats_.bytes_sent->inc(request);
  stats_.bytes_received->inc(response);
  family_.bytes_sent.inc(request);
  family_.bytes_received.inc(response);
  return out;
}

std::vector<std::optional<CachedResult>> DarrClient::lookup_many(
    const std::vector<std::string>& keys) {
  if (keys.empty()) return {};
  obs::ScopedSpan op_span("darr.client.lookup_many");
  op_span.tag("keys", std::to_string(keys.size()));
  std::size_t request = 0;
  for (const auto& key : keys) request += key_request_size(key);
  dist::transfer_with_retry(*net_, self_, repo_node_, request, retry_,
                            "darr.lookup_many");
  std::vector<std::optional<CachedResult>> out;
  out.reserve(keys.size());
  std::size_t response = 0;
  std::size_t found = 0;
  {
    obs::ScopedSpan repo_span("darr.repo.lookup_many", op_span.context());
    repo_span.set_node(net_->node_name(repo_node_));
    for (const auto& key : keys) {
      auto record = repository_->lookup(key);
      if (record) {
        response += record->wire_size();
        ++found;
        CachedResult result;
        result.mean_score = record->mean_score;
        result.stddev = record->stddev;
        result.fold_scores = record->fold_scores;
        result.explanation = record->explanation;
        out.push_back(std::move(result));
      } else {
        response += 16;  // per-key "not found"
        out.push_back(std::nullopt);
      }
    }
  }
  dist::transfer_with_retry(*net_, repo_node_, self_, response, retry_,
                            "darr.lookup_many");
  stats_.lookups->inc(keys.size());
  stats_.hits->inc(found);
  family_.lookups.inc(keys.size());
  family_.hits.inc(found);
  stats_.bytes_sent->inc(request);
  stats_.bytes_received->inc(response);
  family_.bytes_sent.inc(request);
  family_.bytes_received.inc(response);
  return out;
}

bool DarrClient::try_claim(const std::string& key) {
  obs::ScopedSpan op_span("darr.client.try_claim");
  const std::size_t request = key_request_size(key) + name_.size();
  dist::transfer_with_retry(*net_, self_, repo_node_, request, retry_,
                            "darr.try_claim");
  bool granted = false;
  {
    obs::ScopedSpan repo_span("darr.repo.try_claim", op_span.context());
    repo_span.set_node(net_->node_name(repo_node_));
    granted = repository_->try_claim(key, name_);
    repo_span.tag("granted", granted ? "1" : "0");
  }
  if (granted) {
    // Track the grant before the response transfer: if the response is
    // lost past the retry budget the repository still holds the claim in
    // our name, and abandon_all() must know to release it.
    std::lock_guard<std::mutex> lock(held_mutex_);
    held_claims_.insert(key);
  }
  dist::transfer_with_retry(*net_, repo_node_, self_, 16, retry_,
                            "darr.try_claim");
  if (granted) {
    stats_.claims_won->inc();
    family_.claims_won.inc();
  } else {
    stats_.claims_lost->inc();
    family_.claims_lost.inc();
  }
  stats_.bytes_sent->inc(request);
  stats_.bytes_received->inc(16);
  family_.bytes_sent.inc(request);
  family_.bytes_received.inc(16);
  return granted;
}

void DarrClient::store(const std::string& key, const CachedResult& result) {
  DarrRecord record;
  record.key = key;
  record.mean_score = result.mean_score;
  record.stddev = result.stddev;
  record.fold_scores = result.fold_scores;
  record.explanation = result.explanation;
  record.producer = name_;
  obs::ScopedSpan op_span("darr.client.store");
  const std::size_t request = record.wire_size();
  dist::transfer_with_retry(*net_, self_, repo_node_, request, retry_,
                            "darr.store");
  {
    obs::ScopedSpan repo_span("darr.repo.store", op_span.context());
    repo_span.set_node(net_->node_name(repo_node_));
    repository_->store(std::move(record), net_->now());
  }
  {
    // Storing a record releases the claim repository-side.
    std::lock_guard<std::mutex> lock(held_mutex_);
    held_claims_.erase(key);
  }
  dist::transfer_with_retry(*net_, repo_node_, self_, 16, retry_,
                            "darr.store");
  stats_.stores->inc();
  family_.stores.inc();
  stats_.bytes_sent->inc(request);
  stats_.bytes_received->inc(16);
  family_.bytes_sent.inc(request);
  family_.bytes_received.inc(16);
}

void DarrClient::abandon(const std::string& key) {
  obs::ScopedSpan op_span("darr.client.abandon");
  const std::size_t request = key_request_size(key) + name_.size();
  dist::transfer_with_retry(*net_, self_, repo_node_, request, retry_,
                            "darr.abandon");
  {
    obs::ScopedSpan repo_span("darr.repo.abandon", op_span.context());
    repo_span.set_node(net_->node_name(repo_node_));
    repository_->abandon(key, name_);
  }
  {
    std::lock_guard<std::mutex> lock(held_mutex_);
    held_claims_.erase(key);
  }
  dist::transfer_with_retry(*net_, repo_node_, self_, 16, retry_,
                            "darr.abandon");
  stats_.bytes_sent->inc(request);
  stats_.bytes_received->inc(16);
  family_.bytes_sent.inc(request);
  family_.bytes_received.inc(16);
}

void DarrClient::abandon_all() {
  static auto& abandoned = obs::counter("darr.client.claims_abandoned");
  std::vector<std::string> held;
  {
    std::lock_guard<std::mutex> lock(held_mutex_);
    held.assign(held_claims_.begin(), held_claims_.end());
  }
  for (const auto& key : held) {
    try {
      abandon(key);
      abandoned.inc();
    } catch (const NetworkError&) {
      // Release RPC exhausted its retry budget: the key stays in
      // held_claims_ (abandon() only erases after the repository call),
      // so the next abandon_all() retries it. Keep releasing the rest.
    }
  }
}

std::vector<std::string> DarrClient::held_claims() const {
  std::lock_guard<std::mutex> lock(held_mutex_);
  return {held_claims_.begin(), held_claims_.end()};
}

DarrClient::Stats DarrClient::stats() const {
  Stats out;
  out.lookups = stats_.lookups->value();
  out.hits = stats_.hits->value();
  out.claims_won = stats_.claims_won->value();
  out.claims_lost = stats_.claims_lost->value();
  out.stores = stats_.stores->value();
  out.bytes_sent = stats_.bytes_sent->value();
  out.bytes_received = stats_.bytes_received->value();
  return out;
}

}  // namespace coda::darr
