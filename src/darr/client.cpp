#include "src/darr/client.h"

#include <atomic>

namespace coda::darr {

namespace {

std::string next_instance_prefix() {
  static std::atomic<std::uint64_t> next{0};
  return "darr.client#" +
         std::to_string(next.fetch_add(1, std::memory_order_relaxed)) + ".";
}

}  // namespace

DarrClient::DarrClient(DarrRepository* repository, dist::SimNet* net,
                       dist::NodeId self, dist::NodeId repo_node,
                       std::string client_name)
    : repository_(repository),
      net_(net),
      self_(self),
      repo_node_(repo_node),
      name_(std::move(client_name)) {
  require(repository != nullptr && net != nullptr,
          "DarrClient: null dependency");
  require(self != repo_node,
          "DarrClient: client and repository must be distinct nodes");
  require(!name_.empty(), "DarrClient: client name must be non-empty");
  const std::string prefix = next_instance_prefix();
  stats_.lookups = &obs::counter(prefix + "lookups");
  stats_.hits = &obs::counter(prefix + "hits");
  stats_.claims_won = &obs::counter(prefix + "claims_won");
  stats_.claims_lost = &obs::counter(prefix + "claims_lost");
  stats_.stores = &obs::counter(prefix + "stores");
  stats_.bytes_sent = &obs::counter(prefix + "bytes_sent");
  stats_.bytes_received = &obs::counter(prefix + "bytes_received");
}

std::optional<CachedResult> DarrClient::lookup(const std::string& key) {
  static auto& bytes_sent = obs::counter("darr.client.bytes_sent");
  static auto& bytes_received = obs::counter("darr.client.bytes_received");
  const std::size_t request = key_request_size(key);
  net_->transfer(self_, repo_node_, request);
  auto record = repository_->lookup(key);
  std::size_t response = 16;  // "not found"
  std::optional<CachedResult> out;
  if (record) {
    response = record->wire_size();
    CachedResult result;
    result.mean_score = record->mean_score;
    result.stddev = record->stddev;
    result.fold_scores = record->fold_scores;
    result.explanation = record->explanation;
    out = std::move(result);
  }
  net_->transfer(repo_node_, self_, response);
  stats_.lookups->inc();
  if (out) stats_.hits->inc();
  stats_.bytes_sent->inc(request);
  stats_.bytes_received->inc(response);
  bytes_sent.inc(request);
  bytes_received.inc(response);
  return out;
}

std::vector<std::optional<CachedResult>> DarrClient::lookup_many(
    const std::vector<std::string>& keys) {
  if (keys.empty()) return {};
  static auto& bytes_sent = obs::counter("darr.client.bytes_sent");
  static auto& bytes_received = obs::counter("darr.client.bytes_received");
  std::size_t request = 0;
  for (const auto& key : keys) request += key_request_size(key);
  net_->transfer(self_, repo_node_, request);
  std::vector<std::optional<CachedResult>> out;
  out.reserve(keys.size());
  std::size_t response = 0;
  std::size_t found = 0;
  for (const auto& key : keys) {
    auto record = repository_->lookup(key);
    if (record) {
      response += record->wire_size();
      ++found;
      CachedResult result;
      result.mean_score = record->mean_score;
      result.stddev = record->stddev;
      result.fold_scores = record->fold_scores;
      result.explanation = record->explanation;
      out.push_back(std::move(result));
    } else {
      response += 16;  // per-key "not found"
      out.push_back(std::nullopt);
    }
  }
  net_->transfer(repo_node_, self_, response);
  stats_.lookups->inc(keys.size());
  stats_.hits->inc(found);
  stats_.bytes_sent->inc(request);
  stats_.bytes_received->inc(response);
  bytes_sent.inc(request);
  bytes_received.inc(response);
  return out;
}

bool DarrClient::try_claim(const std::string& key) {
  static auto& bytes_sent = obs::counter("darr.client.bytes_sent");
  static auto& bytes_received = obs::counter("darr.client.bytes_received");
  const std::size_t request = key_request_size(key) + name_.size();
  net_->transfer(self_, repo_node_, request);
  const bool granted = repository_->try_claim(key, name_);
  net_->transfer(repo_node_, self_, 16);
  if (granted) {
    stats_.claims_won->inc();
  } else {
    stats_.claims_lost->inc();
  }
  stats_.bytes_sent->inc(request);
  stats_.bytes_received->inc(16);
  bytes_sent.inc(request);
  bytes_received.inc(16);
  return granted;
}

void DarrClient::store(const std::string& key, const CachedResult& result) {
  static auto& bytes_sent = obs::counter("darr.client.bytes_sent");
  static auto& bytes_received = obs::counter("darr.client.bytes_received");
  DarrRecord record;
  record.key = key;
  record.mean_score = result.mean_score;
  record.stddev = result.stddev;
  record.fold_scores = result.fold_scores;
  record.explanation = result.explanation;
  record.producer = name_;
  const std::size_t request = record.wire_size();
  net_->transfer(self_, repo_node_, request);
  repository_->store(std::move(record), net_->now());
  net_->transfer(repo_node_, self_, 16);
  stats_.stores->inc();
  stats_.bytes_sent->inc(request);
  stats_.bytes_received->inc(16);
  bytes_sent.inc(request);
  bytes_received.inc(16);
}

void DarrClient::abandon(const std::string& key) {
  static auto& bytes_sent = obs::counter("darr.client.bytes_sent");
  static auto& bytes_received = obs::counter("darr.client.bytes_received");
  const std::size_t request = key_request_size(key) + name_.size();
  net_->transfer(self_, repo_node_, request);
  repository_->abandon(key, name_);
  net_->transfer(repo_node_, self_, 16);
  stats_.bytes_sent->inc(request);
  stats_.bytes_received->inc(16);
  bytes_sent.inc(request);
  bytes_received.inc(16);
}

DarrClient::Stats DarrClient::stats() const {
  Stats out;
  out.lookups = stats_.lookups->value();
  out.hits = stats_.hits->value();
  out.claims_won = stats_.claims_won->value();
  out.claims_lost = stats_.claims_lost->value();
  out.stores = stats_.stores->value();
  out.bytes_sent = stats_.bytes_sent->value();
  out.bytes_received = stats_.bytes_received->value();
  return out;
}

}  // namespace coda::darr
