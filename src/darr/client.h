// DARR client: adapts a RecordStore — one repository node, a sharded
// cluster, or a test fake — to the core ResultCache interface so a
// GraphEvaluator cooperates transparently (Fig 2), with every repository
// interaction accounted as simulated network traffic through the store's
// Wire reporting.
#pragma once

#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "src/core/evaluator.h"
#include "src/darr/record_store.h"
#include "src/darr/repository.h"
#include "src/dist/sim_net.h"
#include "src/obs/metrics.h"
#include "src/util/retry.h"

namespace coda::darr {

/// ResultCache implementation backed by any RecordStore topology.
class DarrClient final : public ResultCache {
 public:
  /// Per-client traffic/behaviour snapshot. Backed by registry counters
  /// (`darr.client#<n>.*`); this struct is a point-in-time view.
  struct Stats {
    std::size_t lookups = 0;
    std::size_t hits = 0;
    std::size_t claims_won = 0;
    std::size_t claims_lost = 0;
    std::size_t stores = 0;
    std::size_t bytes_sent = 0;
    std::size_t bytes_received = 0;
  };

  /// Canonical constructor: any RecordStore (SingleNodeDarrService,
  /// ShardedDarrService, an in-process DarrRepository, a test fake).
  /// `client_name` identifies this client as a record producer and claim
  /// holder; `retry` paces abandon_all()'s release passes. Store operations
  /// that throw NetworkError (their own retry budget spent) propagate to
  /// the evaluator's CooperativeFetch, which degrades to local evaluation.
  DarrClient(RecordStore* store, std::string client_name,
             RetryPolicy retry = {});

  /// Single-repository convenience: wires an owned SingleNodeDarrService
  /// over `net` between `self` and `repo_node` (the original Fig-2
  /// topology), with `retry` as its transfer budget.
  DarrClient(DarrRepository* repository, dist::SimNet* net,
             dist::NodeId self, dist::NodeId repo_node,
             std::string client_name, RetryPolicy retry = {});

  // ResultCache canonical surface (the deprecated lookup/try_claim/store/
  // abandon spellings delegate here via the base class).
  std::optional<CachedResult> fetch(const std::string& key) override;
  std::vector<std::optional<CachedResult>> fetch_many(
      const std::vector<std::string>& keys) override;
  bool claim(const std::string& key) override;
  void put(const std::string& key, const CachedResult& result) override;
  void release(const std::string& key) override;

  const std::string& client_name() const { return name_; }
  Stats stats() const;

  /// Releases every claim this client currently holds so peers can reclaim
  /// the work. Called on crash-recovery (a restarted node must not leave
  /// orphaned claims pinning candidates until TTL expiry) and safe to call
  /// when nothing is held. Runs up to retry_.max_attempts release passes:
  /// a claim whose release RPC exhausted its transfer budget stays tracked
  /// and is retried on the next pass — each inner retry's backoff advances
  /// the SimNet logical clock, so a transient partition or crash window
  /// can heal mid-call and the lease is released instead of leaking until
  /// TTL expiry. Keys still unreachable after the last pass stay tracked
  /// for a later call.
  void abandon_all();

  /// Keys this client has claimed but not yet stored or released.
  std::vector<std::string> held_claims() const;

 private:
  DarrClient(std::unique_ptr<RecordStore> owned_store,
             std::string client_name, RetryPolicy retry);

  /// Registry-backed instance counters; atomic, so evaluator threads need
  /// no client-side lock.
  struct InstanceCounters {
    obs::Counter* lookups = nullptr;
    obs::Counter* hits = nullptr;
    obs::Counter* claims_won = nullptr;
    obs::Counter* claims_lost = nullptr;
    obs::Counter* stores = nullptr;
    obs::Counter* bytes_sent = nullptr;
    obs::Counter* bytes_received = nullptr;
  };

  /// Process-wide `darr.client.*` family counters paired with this
  /// client's node shard (fleet telemetry): one inc() hits both.
  struct FamilyCounters {
    obs::ScopedCounter lookups;
    obs::ScopedCounter hits;
    obs::ScopedCounter claims_won;
    obs::ScopedCounter claims_lost;
    obs::ScopedCounter stores;
    obs::ScopedCounter bytes_sent;
    obs::ScopedCounter bytes_received;
  };

  void count_traffic(const Wire& wire);
  void track_claim(const std::string& key);
  void untrack_claim(const std::string& key);
  bool holds_claim(const std::string& key) const;

  std::unique_ptr<RecordStore> owned_store_;  ///< legacy-ctor service
  RecordStore* store_;
  std::string name_;
  RetryPolicy retry_;
  InstanceCounters stats_;
  FamilyCounters family_;
  mutable std::mutex held_mutex_;
  std::set<std::string> held_claims_;
};

}  // namespace coda::darr
