// DARR client: adapts the repository to the core ResultCache interface so a
// GraphEvaluator cooperates transparently (Fig 2), with every repository
// interaction accounted as simulated network traffic.
#pragma once

#include <mutex>
#include <set>
#include <string>

#include "src/core/evaluator.h"
#include "src/darr/repository.h"
#include "src/dist/sim_net.h"
#include "src/obs/metrics.h"
#include "src/util/retry.h"

namespace coda::darr {

/// ResultCache implementation backed by a shared DarrRepository.
class DarrClient final : public ResultCache {
 public:
  /// Per-client traffic/behaviour snapshot. Backed by registry counters
  /// (`darr.client#<n>.*`); this struct is a point-in-time view.
  struct Stats {
    std::size_t lookups = 0;
    std::size_t hits = 0;
    std::size_t claims_won = 0;
    std::size_t claims_lost = 0;
    std::size_t stores = 0;
    std::size_t bytes_sent = 0;
    std::size_t bytes_received = 0;
  };

  /// `net`/`self`/`repo_node` wire network accounting; `client_name`
  /// identifies this client as a record producer and claim holder. Every
  /// repository interaction retries failed transfers under `retry` and
  /// throws NetworkError once the budget is exhausted (the evaluator's
  /// CooperativeFetch catches that and degrades to local evaluation).
  DarrClient(DarrRepository* repository, dist::SimNet* net,
             dist::NodeId self, dist::NodeId repo_node,
             std::string client_name, RetryPolicy retry = {});

  std::optional<CachedResult> lookup(const std::string& key) override;
  /// Batched lookup in ONE simulated round-trip: the request carries every
  /// key, the response every found record — the evaluator's initial sweep
  /// over N candidates costs one message pair instead of N. Stats count one
  /// lookup (and hit, where found) per key, like N singles would.
  std::vector<std::optional<CachedResult>> lookup_many(
      const std::vector<std::string>& keys) override;
  bool try_claim(const std::string& key) override;
  void store(const std::string& key, const CachedResult& result) override;
  void abandon(const std::string& key) override;

  const std::string& client_name() const { return name_; }
  Stats stats() const;

  /// Releases every claim this client currently holds so peers can reclaim
  /// the work. Called on crash-recovery (a restarted node must not leave
  /// orphaned claims pinning candidates until TTL expiry) and safe to call
  /// when nothing is held. Claims whose release RPC itself fails stay
  /// tracked, so a later call retries them.
  void abandon_all();

  /// Keys this client has claimed but not yet stored or abandoned.
  std::vector<std::string> held_claims() const;

 private:
  std::size_t key_request_size(const std::string& key) const {
    return key.size() + 16;
  }

  /// Registry-backed instance counters; atomic, so evaluator threads need
  /// no client-side lock.
  struct InstanceCounters {
    obs::Counter* lookups = nullptr;
    obs::Counter* hits = nullptr;
    obs::Counter* claims_won = nullptr;
    obs::Counter* claims_lost = nullptr;
    obs::Counter* stores = nullptr;
    obs::Counter* bytes_sent = nullptr;
    obs::Counter* bytes_received = nullptr;
  };

  /// Process-wide `darr.client.*` family counters paired with this
  /// client's node shard (fleet telemetry): one inc() hits both.
  struct FamilyCounters {
    obs::ScopedCounter lookups;
    obs::ScopedCounter hits;
    obs::ScopedCounter claims_won;
    obs::ScopedCounter claims_lost;
    obs::ScopedCounter stores;
    obs::ScopedCounter bytes_sent;
    obs::ScopedCounter bytes_received;
  };

  DarrRepository* repository_;
  dist::SimNet* net_;
  dist::NodeId self_;
  dist::NodeId repo_node_;
  std::string name_;
  RetryPolicy retry_;
  InstanceCounters stats_;
  FamilyCounters family_;
  mutable std::mutex held_mutex_;
  std::set<std::string> held_claims_;
};

}  // namespace coda::darr
