// The RecordStore interface: the one repository surface every DARR consumer
// talks to (DESIGN.md §13). DarrRepository implements it in-process,
// SingleNodeDarrService implements it over one SimNet repository node, and
// ShardedDarrService (src/darr/sharded.h) implements it over a consistent-
// hash ring of replicated shard nodes — DarrClient, CooperativeFetch and
// the eval engine never know how many nodes are behind the surface.
//
// The five operations mirror the ResultCache contract one level down, in
// repository terms (DarrRecord + explicit client identity):
//
//   fetch / fetch_many  — read records; a miss means the key may be claimed.
//   claim               — lease the key for `client`; false = a peer holds
//                         a live claim (or the record already exists).
//   put                 — publish a record, releasing its key's claim.
//   release             — drop `client`'s claim without publishing.
//
// Every operation reports its traffic through a Wire out-param so callers
// (DarrClient) account bytes without knowing the topology.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/darr/record.h"
#include "src/dist/sim_net.h"
#include "src/util/retry.h"

namespace coda::darr {

class DarrRepository;  // implements RecordStore in-process (repository.h)

/// Per-operation traffic/outcome accounting, filled in progressively so it
/// is meaningful even when the operation throws NetworkError mid-flight.
struct Wire {
  std::size_t bytes_sent = 0;      ///< client -> store request bytes
  std::size_t bytes_received = 0;  ///< store -> client response bytes
  /// The state change was applied store-side even if the response leg was
  /// lost past the retry budget (claim granted / record stored / claim
  /// released before the NetworkError): callers must track held claims
  /// whenever this is true, or a crashed response wedges the key until
  /// its lease TTL.
  bool applied = false;
};

/// Request framing shared by every RecordStore implementation: a key plus
/// a fixed 16-byte message envelope (also the size of an empty response).
constexpr std::size_t kMessageOverhead = 16;
inline std::size_t key_request_size(const std::string& key) {
  return key.size() + kMessageOverhead;
}

/// The unified repository surface. Implementations must be safe to call
/// from multiple evaluator threads.
class RecordStore {
 public:
  virtual ~RecordStore() = default;

  /// Returns the record for `key`, if any client has published one.
  virtual std::optional<DarrRecord> fetch(const std::string& key,
                                          Wire& wire) = 0;

  /// Batch fetch: element i answers keys[i]. The default loops fetch();
  /// networked stores override it to answer the evaluator's initial sweep
  /// in one round-trip per serving node instead of one per key.
  virtual std::vector<std::optional<DarrRecord>> fetch_many(
      const std::vector<std::string>& keys, Wire& wire);

  /// Leases `key` for `client`. False = a live foreign claim (or an
  /// already-stored record) — the caller must not compute the key.
  virtual bool claim(const std::string& key, const std::string& client,
                     Wire& wire) = 0;

  /// Publishes `record` and releases its key's claim.
  virtual void put(DarrRecord record, Wire& wire) = 0;

  /// Releases `client`'s claim on `key` without publishing.
  virtual void release(const std::string& key, const std::string& client,
                       Wire& wire) = 0;

  /// Distinct records stored behind this surface (replicas counted once).
  virtual std::size_t n_records() const = 0;
};

/// RecordStore over one repository node on a SimNet: the single-node
/// topology the paper's Fig-2 reproduction started from. Each operation is
/// one simulated request/response pair retried under `retry`; NetworkError
/// propagates once the budget is spent (CooperativeFetch catches it and
/// degrades to local evaluation).
class SingleNodeDarrService final : public RecordStore {
 public:
  SingleNodeDarrService(DarrRepository* repository, dist::SimNet* net,
                        dist::NodeId self, dist::NodeId repo_node,
                        RetryPolicy retry = {});

  std::optional<DarrRecord> fetch(const std::string& key, Wire& wire) override;
  std::vector<std::optional<DarrRecord>> fetch_many(
      const std::vector<std::string>& keys, Wire& wire) override;
  bool claim(const std::string& key, const std::string& client,
             Wire& wire) override;
  void put(DarrRecord record, Wire& wire) override;
  void release(const std::string& key, const std::string& client,
               Wire& wire) override;
  std::size_t n_records() const override;

 private:
  DarrRepository* repository_;
  dist::SimNet* net_;
  dist::NodeId self_;
  dist::NodeId repo_node_;
  RetryPolicy retry_;
};

}  // namespace coda::darr
