#include "src/darr/sharded.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/dist/replication.h"
#include "src/dist/retry.h"
#include "src/obs/trace.h"

namespace coda::darr {

std::uint64_t stable_hash64(const std::string& s) {
  // FNV-1a over the bytes, then splitmix64 to spread low-entropy inputs
  // (ring point labels differ only in a few digits) across the ring.
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  h += 0x9e3779b97f4a7c15ull;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return h ^ (h >> 31);
}

HashRing::HashRing(std::size_t n_shards, std::size_t replication,
                   std::size_t ring_points)
    : n_shards_(n_shards), replication_(std::min(replication, n_shards)) {
  require(n_shards >= 1, "HashRing: need >= 1 shard");
  require(replication >= 1, "HashRing: need replication >= 1");
  require(ring_points >= 1, "HashRing: need >= 1 ring point per shard");
  points_.reserve(n_shards * ring_points);
  for (std::size_t shard = 0; shard < n_shards; ++shard) {
    for (std::size_t v = 0; v < ring_points; ++v) {
      const std::string label =
          "ring:" + std::to_string(shard) + ":" + std::to_string(v);
      points_.emplace_back(stable_hash64(label), shard);
    }
  }
  std::sort(points_.begin(), points_.end());
}

std::vector<std::size_t> HashRing::owners(const std::string& key) const {
  const std::uint64_t h = stable_hash64(key);
  std::vector<std::size_t> out;
  out.reserve(replication_);
  // Walk clockwise from the key's position, collecting distinct shards.
  auto it = std::lower_bound(
      points_.begin(), points_.end(), std::make_pair(h, std::size_t{0}),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  for (std::size_t step = 0;
       step < points_.size() && out.size() < replication_; ++step) {
    if (it == points_.end()) it = points_.begin();
    if (std::find(out.begin(), out.end(), it->second) == out.end()) {
      out.push_back(it->second);
    }
    ++it;
  }
  return out;
}

DarrCluster::DarrCluster(dist::SimNet* net, Config config)
    : net_(net),
      config_(std::move(config)),
      ring_(config_.n_shards, config_.replication, config_.ring_points) {
  require(net != nullptr, "DarrCluster: null network");
  config_.sync_retry.validate();
  // Register the failed-sync family up front so a healthy run still
  // exports the pinned metric name (tests/golden/metrics_keys.txt).
  obs::counter("replication.failed_syncs");
  nodes_.reserve(config_.n_shards);
  shards_.reserve(config_.n_shards);
  for (std::size_t i = 0; i < config_.n_shards; ++i) {
    const std::string name = config_.node_prefix + std::to_string(i);
    nodes_.push_back(net_->add_node(name));
    DarrRepository::Config repo_config;
    repo_config.claim_ttl_ms = config_.claim_ttl_ms;
    repo_config.node_name = name;
    shards_.push_back(std::make_unique<DarrRepository>(repo_config));
  }
}

DarrCluster::DarrCluster(dist::SimNet* net) : DarrCluster(net, Config{}) {}

dist::NodeId DarrCluster::node(std::size_t shard) const {
  require(shard < nodes_.size(), "DarrCluster: shard index out of range");
  return nodes_[shard];
}

DarrRepository& DarrCluster::shard(std::size_t i) {
  require(i < shards_.size(), "DarrCluster: shard index out of range");
  return *shards_[i];
}

std::size_t DarrCluster::size() const {
  std::set<std::string> keys;
  for (const auto& shard : shards_) {
    for (auto& key : shard->keys_with_prefix("")) keys.insert(std::move(key));
  }
  return keys.size();
}

DarrRepository::Counters DarrCluster::counters() const {
  DarrRepository::Counters out;
  for (const auto& shard : shards_) {
    const auto c = shard->counters();
    out.lookups += c.lookups;
    out.hits += c.hits;
    out.stores += c.stores;
    out.claims_granted += c.claims_granted;
    out.claims_denied += c.claims_denied;
    out.claims_expired += c.claims_expired;
  }
  return out;
}

DarrCluster::SyncStats DarrCluster::sync_stats() const {
  std::lock_guard<std::mutex> lock(sync_mutex_);
  return sync_stats_;
}

void DarrCluster::count_replica_sync(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(sync_mutex_);
  ++sync_stats_.replica_syncs;
  sync_stats_.bytes_shipped += bytes;
}

void DarrCluster::count_failed_sync() {
  std::lock_guard<std::mutex> lock(sync_mutex_);
  ++sync_stats_.failed_syncs;
}

ShardedDarrService::ShardedDarrService(DarrCluster* cluster,
                                       dist::NodeId self, RetryPolicy retry)
    : cluster_(cluster), self_(self), retry_(retry) {
  require(cluster != nullptr, "ShardedDarrService: null cluster");
  retry_.validate();
}

std::size_t ShardedDarrService::serving_shard(const std::string& key) const {
  const auto owners = cluster_->owners(key);
  for (const std::size_t shard : owners) {
    if (cluster_->net().node_up(cluster_->node(shard))) return shard;
  }
  return owners.front();
}

template <typename ApplyFn>
void ShardedDarrService::sync_owners(std::size_t serving,
                                     const std::vector<std::size_t>& owners,
                                     const std::string& key,
                                     std::size_t bytes, const std::string& op,
                                     ApplyFn apply_fn) {
  for (const std::size_t shard : owners) {
    if (shard == serving) continue;
    if (!dist::sync_replica(cluster_->net(), cluster_->node(serving),
                            cluster_->node(shard), bytes,
                            cluster_->sync_retry(), op, key)) {
      cluster_->count_failed_sync();
      continue;
    }
    apply_fn(cluster_->shard(shard));
    cluster_->count_replica_sync(bytes);
  }
}

std::optional<DarrRecord> ShardedDarrService::fetch(const std::string& key,
                                                    Wire& wire) {
  const auto owners = cluster_->owners(key);
  const std::size_t request = key_request_size(key);
  bool failover = false;  // true once any owner was skipped or unreachable
  bool reached = false;
  for (const std::size_t shard : owners) {
    const dist::NodeId node = cluster_->node(shard);
    if (!cluster_->net().node_up(node)) {
      failover = true;
      continue;
    }
    std::optional<DarrRecord> record;
    try {
      dist::transfer_with_retry(cluster_->net(), self_, node, request, retry_,
                                "darr.lookup");
      {
        obs::ScopedSpan repo_span("darr.repo.lookup");
        repo_span.set_node(cluster_->net().node_name(node));
        record = cluster_->shard(shard).lookup(key);
      }
      const std::size_t response =
          record ? record->wire_size() : kMessageOverhead;
      dist::transfer_with_retry(cluster_->net(), node, self_, response,
                                retry_, "darr.lookup");
      wire.bytes_sent += request;
      wire.bytes_received += response;
    } catch (const NetworkError&) {
      failover = true;
      continue;
    }
    // A miss on the serving owner is authoritative; a miss AFTER a
    // failover may just be a replica that lost a sync — ask the next
    // owner before reporting the record absent.
    if (record || !failover) return record;
    reached = true;
  }
  if (reached) return std::nullopt;
  throw NetworkError("darr.shard.lookup: no reachable owner for " + key);
}

std::vector<std::optional<DarrRecord>> ShardedDarrService::fetch_many(
    const std::vector<std::string>& keys, Wire& wire) {
  std::vector<std::optional<DarrRecord>> out(keys.size());
  // Group keys by serving shard: the sweep costs one round-trip per shard
  // that owns part of the candidate space (deterministic shard order).
  std::map<std::size_t, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    groups[serving_shard(keys[i])].push_back(i);
  }
  std::size_t unreachable_groups = 0;
  for (const auto& [shard, indices] : groups) {
    const dist::NodeId node = cluster_->node(shard);
    std::size_t request = 0;
    for (const std::size_t i : indices) request += key_request_size(keys[i]);
    try {
      dist::transfer_with_retry(cluster_->net(), self_, node, request, retry_,
                                "darr.lookup_many");
      std::size_t response = 0;
      {
        obs::ScopedSpan repo_span("darr.repo.lookup_many");
        repo_span.set_node(cluster_->net().node_name(node));
        for (const std::size_t i : indices) {
          auto record = cluster_->shard(shard).lookup(keys[i]);
          response += record ? record->wire_size() : kMessageOverhead;
          out[i] = std::move(record);
        }
      }
      dist::transfer_with_retry(cluster_->net(), node, self_, response,
                                retry_, "darr.lookup_many");
      wire.bytes_sent += request;
      wire.bytes_received += response;
    } catch (const NetworkError&) {
      // This shard's keys stay misses; the sweep keeps cooperating on the
      // shards that answered.
      ++unreachable_groups;
    }
  }
  if (!groups.empty() && unreachable_groups == groups.size()) {
    throw NetworkError("darr.shard.lookup_many: every shard unreachable");
  }
  return out;
}

bool ShardedDarrService::claim(const std::string& key,
                               const std::string& client, Wire& wire) {
  const auto owners = cluster_->owners(key);
  const std::size_t request = key_request_size(key) + client.size();
  for (const std::size_t shard : owners) {
    const dist::NodeId node = cluster_->node(shard);
    if (!cluster_->net().node_up(node)) continue;
    try {
      dist::transfer_with_retry(cluster_->net(), self_, node, request, retry_,
                                "darr.try_claim");
      bool granted = false;
      {
        obs::ScopedSpan repo_span("darr.repo.try_claim");
        repo_span.set_node(cluster_->net().node_name(node));
        granted = cluster_->shard(shard).try_claim(key, client);
        repo_span.tag("granted", granted ? "1" : "0");
      }
      wire.applied = granted;
      if (granted) {
        // Replicate the lease so ownership migrates if this owner crashes
        // mid-computation: any surviving owner then serves (and defends)
        // the claim in place.
        sync_owners(shard, owners, key, request, "darr.sync.claim",
                    [&](DarrRepository& replica) {
                      replica.try_claim(key, client);
                    });
      }
      dist::transfer_with_retry(cluster_->net(), node, self_,
                                kMessageOverhead, retry_, "darr.try_claim");
      wire.bytes_sent += request;
      wire.bytes_received += kMessageOverhead;
      return granted;
    } catch (const NetworkError&) {
      // Failover: if the lease was applied before the response leg died the
      // caller tracks it via wire.applied; trying the next owner instead
      // would double-grant.
      if (wire.applied) throw;
      continue;
    }
  }
  throw NetworkError("darr.shard.try_claim: no reachable owner for " + key);
}

void ShardedDarrService::put(DarrRecord record, Wire& wire) {
  const auto owners = cluster_->owners(record.key);
  const std::size_t request = record.wire_size();
  for (const std::size_t shard : owners) {
    const dist::NodeId node = cluster_->node(shard);
    if (!cluster_->net().node_up(node)) continue;
    try {
      dist::transfer_with_retry(cluster_->net(), self_, node, request, retry_,
                                "darr.store");
      {
        obs::ScopedSpan repo_span("darr.repo.store");
        repo_span.set_node(cluster_->net().node_name(node));
        cluster_->shard(shard).store(record, cluster_->net().now());
      }
      wire.applied = true;
      sync_owners(shard, owners, record.key, request, "darr.sync.store",
                  [&](DarrRepository& replica) {
                    replica.store(record, cluster_->net().now());
                  });
      dist::transfer_with_retry(cluster_->net(), node, self_,
                                kMessageOverhead, retry_, "darr.store");
      wire.bytes_sent += request;
      wire.bytes_received += kMessageOverhead;
      return;
    } catch (const NetworkError&) {
      if (wire.applied) throw;  // stored; only the response leg was lost
      continue;
    }
  }
  throw NetworkError("darr.shard.store: no reachable owner for " +
                     record.key);
}

void ShardedDarrService::release(const std::string& key,
                                 const std::string& client, Wire& wire) {
  const auto owners = cluster_->owners(key);
  const std::size_t request = key_request_size(key) + client.size();
  for (const std::size_t shard : owners) {
    const dist::NodeId node = cluster_->node(shard);
    if (!cluster_->net().node_up(node)) continue;
    try {
      dist::transfer_with_retry(cluster_->net(), self_, node, request, retry_,
                                "darr.abandon");
      {
        obs::ScopedSpan repo_span("darr.repo.abandon");
        repo_span.set_node(cluster_->net().node_name(node));
        cluster_->shard(shard).abandon(key, client);
      }
      wire.applied = true;
      sync_owners(shard, owners, key, request, "darr.sync.release",
                  [&](DarrRepository& replica) {
                    replica.abandon(key, client);
                  });
      dist::transfer_with_retry(cluster_->net(), node, self_,
                                kMessageOverhead, retry_, "darr.abandon");
      wire.bytes_sent += request;
      wire.bytes_received += kMessageOverhead;
      return;
    } catch (const NetworkError&) {
      if (wire.applied) throw;
      continue;
    }
  }
  throw NetworkError("darr.shard.abandon: no reachable owner for " + key);
}

std::size_t ShardedDarrService::n_records() const { return cluster_->size(); }

}  // namespace coda::darr
