// DARR records (Section III, Fig 2): a shared analytics result — the score
// of one structured calculation on one data set — "along with an
// explanation of how the results were achieved".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/serialization.h"

namespace coda::darr {

/// One stored analytics result.
struct DarrRecord {
  /// Canonical calculation identity:
  /// "<dataset fingerprint>|<pipeline spec>|<cv spec>|<metric>".
  std::string key;
  double mean_score = 0.0;
  double stddev = 0.0;
  std::vector<double> fold_scores;
  /// How the result was achieved (the pipeline spec, human-readable).
  std::string explanation;
  /// Which client produced it.
  std::string producer;
  /// Simulated time at which it was stored.
  double stored_at = 0.0;

  /// Wire size of the serialized record (for network accounting).
  std::size_t wire_size() const;

  Bytes serialize() const;
  static DarrRecord deserialize(const Bytes& buffer);

  bool operator==(const DarrRecord& other) const = default;
};

}  // namespace coda::darr
