// Sharded, replicated DARR (DESIGN.md §13): the repository is split across
// N SimNet shard nodes by consistent hashing on the record key (which
// embeds the dataset fingerprint — GraphEvaluator::cache_key), each key
// owned by a primary shard plus R-1 distinct replicas taken clockwise on
// the ring. DarrCluster owns the server tier (nodes, per-shard
// DarrRepository instances, the ring, sync accounting); ShardedDarrService
// is the per-client RecordStore — a hash-ring router with failover that
// serves every operation from the first live owner and synchronizes the
// others through dist::sync_replica.
//
// Lease migration: claims and releases replicate to every owner like
// records do, so when a shard node crashes the next owner already knows
// the live leases and serves them in place (ownership migrates with the
// failover order). A replica that missed a sync (counted in the pinned
// `replication.failed_syncs` family) is protected by the claim TTL: the
// worst case is one duplicated evaluation, never a wedged key.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/darr/record_store.h"
#include "src/darr/repository.h"
#include "src/dist/sim_net.h"
#include "src/util/retry.h"

namespace coda::darr {

/// Stable 64-bit string hash (FNV-1a, then a splitmix64 finalizer): pure
/// integer math, so ring placement is identical on every client, platform
/// and run — the property that makes sharded cooperation sound.
std::uint64_t stable_hash64(const std::string& s);

/// Consistent-hash ring with virtual nodes. Each shard contributes
/// `ring_points` points; a key's owners are the first `replication`
/// distinct shards clockwise from the key's hash, primary first. Adding a
/// shard therefore moves ~1/N of the keyspace instead of rehashing it all.
class HashRing {
 public:
  HashRing(std::size_t n_shards, std::size_t replication,
           std::size_t ring_points);

  /// Primary + replica shard indices for `key`, primary first; size ==
  /// min(replication, n_shards), all distinct.
  std::vector<std::size_t> owners(const std::string& key) const;

  std::size_t n_shards() const { return n_shards_; }
  std::size_t replication() const { return replication_; }

 private:
  std::size_t n_shards_;
  std::size_t replication_;
  /// (point hash, shard) sorted by hash — immutable after construction,
  /// so owners() needs no lock.
  std::vector<std::pair<std::uint64_t, std::size_t>> points_;
};

/// The server tier of a sharded DARR: shard nodes on one SimNet, each
/// hosting its own DarrRepository (node-named, so per-shard fleet
/// telemetry comes for free), plus the ring and replica-sync accounting.
class DarrCluster {
 public:
  struct Config {
    std::size_t n_shards = 4;
    /// Copies of every record/lease, including the primary. Clamped to
    /// n_shards; 1 = no replication.
    std::size_t replication = 2;
    std::size_t ring_points = 32;  ///< virtual nodes per shard
    int claim_ttl_ms = 2000;
    std::string node_prefix = "shard";
    /// Retry budget for replica sync transfers (server-to-server).
    RetryPolicy sync_retry = {};
  };

  struct SyncStats {
    std::size_t replica_syncs = 0;  ///< record/lease syncs delivered
    std::size_t failed_syncs = 0;   ///< syncs lost to crash/partition
    std::size_t bytes_shipped = 0;
  };

  DarrCluster(dist::SimNet* net, Config config);
  explicit DarrCluster(dist::SimNet* net);  ///< default Config

  dist::SimNet& net() { return *net_; }
  const HashRing& ring() const { return ring_; }
  std::size_t n_shards() const { return shards_.size(); }
  std::size_t replication() const { return ring_.replication(); }
  dist::NodeId node(std::size_t shard) const;
  DarrRepository& shard(std::size_t i);
  std::vector<std::size_t> owners(const std::string& key) const {
    return ring_.owners(key);
  }

  /// Distinct records across the cluster (replicas counted once).
  std::size_t size() const;

  /// Counters summed over every shard. Replicated writes count once per
  /// copy (stores == records x replication when every sync lands).
  DarrRepository::Counters counters() const;

  SyncStats sync_stats() const;

  const RetryPolicy& sync_retry() const { return config_.sync_retry; }

  /// Sync-accounting hooks used by ShardedDarrService.
  void count_replica_sync(std::size_t bytes);
  void count_failed_sync();

 private:
  dist::SimNet* net_;
  Config config_;
  HashRing ring_;
  std::vector<dist::NodeId> nodes_;
  std::vector<std::unique_ptr<DarrRepository>> shards_;
  mutable std::mutex sync_mutex_;
  SyncStats sync_stats_;
};

/// The client-side RecordStore over a DarrCluster: one instance per client
/// node. Every operation routes to the key's first live owner (primary
/// unless crashed/unreachable — that is the failover), applies there, and
/// replicates the state change to the remaining owners.
class ShardedDarrService final : public RecordStore {
 public:
  ShardedDarrService(DarrCluster* cluster, dist::NodeId self,
                     RetryPolicy retry = {});

  std::optional<DarrRecord> fetch(const std::string& key, Wire& wire) override;
  /// Grouped sweep: one round-trip per serving shard instead of one per
  /// key. A shard unreachable past the retry budget reports its keys as
  /// misses (cooperation continues on the live shards); NetworkError
  /// propagates only when every shard was unreachable.
  std::vector<std::optional<DarrRecord>> fetch_many(
      const std::vector<std::string>& keys, Wire& wire) override;
  bool claim(const std::string& key, const std::string& client,
             Wire& wire) override;
  void put(DarrRecord record, Wire& wire) override;
  void release(const std::string& key, const std::string& client,
               Wire& wire) override;
  std::size_t n_records() const override;

 private:
  /// First owner of `key` that is outside a crash window (the serving
  /// shard for grouped sweeps); falls back to the primary when every
  /// owner is down.
  std::size_t serving_shard(const std::string& key) const;

  /// Replicates one applied state change from the serving owner to every
  /// other owner: ship `bytes` via dist::sync_replica, then apply_fn on
  /// the replica's repository when the sync landed.
  template <typename ApplyFn>
  void sync_owners(std::size_t serving, const std::vector<std::size_t>& owners,
                   const std::string& key, std::size_t bytes,
                   const std::string& op, ApplyFn apply_fn);

  DarrCluster* cluster_;
  dist::NodeId self_;
  RetryPolicy retry_;
};

}  // namespace coda::darr
