// Cooperative graph search (Fig 2): N clients, each with its own DarrClient
// connected to one shared repository, concurrently evaluate the same
// Transformer-Estimator Graph on the same data set. Claims partition the
// candidate space; every client ends the run with the complete result set
// (its own computations plus everyone else's, read from the DARR).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/core/cross_validation.h"
#include "src/core/evaluator.h"
#include "src/core/te_graph.h"
#include "src/darr/client.h"
#include "src/data/dataset.h"
#include "src/obs/collector.h"

namespace coda::darr {

/// Per-client outcome of a cooperative run.
struct ClientOutcome {
  std::string name;
  std::size_t evaluated_locally = 0;
  std::size_t served_from_cache = 0;
  double seconds = 0.0;
  DarrClient::Stats darr_stats;
  EvaluationReport report;
};

/// Whole-run outcome.
struct CooperativeReport {
  std::vector<ClientOutcome> clients;
  std::size_t total_candidates = 0;
  std::size_t total_local_evaluations = 0;  ///< across clients
  std::size_t redundant_evaluations = 0;    ///< local evals beyond the
                                            ///< candidate count (0 = perfect
                                            ///< cooperation)
  double wall_seconds = 0.0;
  DarrRepository::Counters repository_counters;
  /// Fleet telemetry collected during the run: every client (and the
  /// repository) shipped its MetricScope shard to a dedicated "telemetry"
  /// SimNet node as snapshot deltas; per-node aggregates and tracked
  /// series live here.
  std::shared_ptr<obs::TelemetryCollector> telemetry;
  /// Result of comparing the collector's fleet aggregate against the
  /// process-wide registry after the final flush — empty on a fault-free
  /// run (the fleet sum reproduces the global counts bit-for-bit).
  std::string telemetry_divergence;
};

/// Runs `n_clients` cooperative searches of `graph` over `data`
/// concurrently (one thread per client, each client evaluating serially so
/// the division of labour is attributable). `evaluator_threads` sets each
/// client's internal parallelism.
CooperativeReport run_cooperative_search(const TEGraph& graph,
                                         const Dataset& data,
                                         const CrossValidator& cv,
                                         Metric metric, std::size_t n_clients,
                                         std::size_t evaluator_threads = 1);

}  // namespace coda::darr
