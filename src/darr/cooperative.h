// Cooperative graph search (Fig 2), from a handful of clients up to
// thousand-client fleets: N clients, each with its own DarrClient bound to
// the shared repository tier — one DarrRepository node, or a sharded,
// replicated DarrCluster (DESIGN.md §13) — concurrently evaluate the same
// graph on the same data set. Claims partition the candidate space; every
// client ends the run with the complete result set (its own computations
// plus everyone else's, read from the DARR).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/core/cross_validation.h"
#include "src/core/evaluator.h"
#include "src/core/te_graph.h"
#include "src/darr/client.h"
#include "src/darr/sharded.h"
#include "src/data/dataset.h"
#include "src/obs/collector.h"
#include "src/ts/forecast_graph.h"

namespace coda::darr {

/// Per-client outcome of a cooperative run.
struct ClientOutcome {
  std::string name;
  std::size_t evaluated_locally = 0;
  std::size_t served_from_cache = 0;
  double seconds = 0.0;
  DarrClient::Stats darr_stats;
  EvaluationReport report;
};

/// Whole-run outcome.
struct CooperativeReport {
  std::vector<ClientOutcome> clients;
  std::size_t total_candidates = 0;
  std::size_t total_local_evaluations = 0;  ///< across clients
  std::size_t redundant_evaluations = 0;    ///< local evals beyond the
                                            ///< candidate count (0 = perfect
                                            ///< cooperation)
  /// Candidate evaluations served from a peer's stored result instead of
  /// recomputed — the paper's headline quantity, summed over clients.
  std::size_t redundancy_avoided = 0;
  double wall_seconds = 0.0;
  /// Repository tier shape: 0 shards = the single "darr" node topology.
  std::size_t n_shards = 0;
  std::size_t replication = 1;
  /// Every byte the fabric carried (client ops + replica syncs +
  /// telemetry), from SimNet's deterministic accounting.
  std::size_t bytes_on_wire = 0;
  /// p99 of evaluator.claim.wait_seconds across the fleet: the claim-
  /// contention price of waiting on a peer's in-flight computation.
  double claim_wait_p99_seconds = 0.0;
  DarrRepository::Counters repository_counters;  ///< summed over shards
  DarrCluster::SyncStats sync_stats;  ///< zeros in single-repository mode
  /// Fleet telemetry collected during the run: every client (and the
  /// repository tier) shipped its MetricScope shard to a dedicated
  /// "telemetry" SimNet node as snapshot deltas; per-node aggregates and
  /// tracked series live here. Null when FleetOptions::telemetry is off.
  std::shared_ptr<obs::TelemetryCollector> telemetry;
  /// Result of comparing the collector's fleet aggregate against the
  /// process-wide registry after the final flush — empty on a fault-free
  /// run (the fleet sum reproduces the global counts bit-for-bit).
  std::string telemetry_divergence;
};

/// Fleet topology and pacing for run_cooperative_fleet().
struct FleetOptions {
  std::size_t n_clients = 1;
  std::size_t evaluator_threads = 1;
  /// 0 = the original single-repository topology (one "darr" node);
  /// >= 1 shards the repository across that many nodes by consistent
  /// hashing with `replication` copies per record.
  std::size_t n_shards = 0;
  std::size_t replication = 2;
  std::size_t ring_points = 32;
  int claim_ttl_ms = 2000;
  /// Client sessions running concurrently; 0 = one thread per client
  /// (small fleets). Thousand-client fleets set a bounded worker pool; 1
  /// runs the sessions serially in client order, which makes the whole
  /// run — byte counts included — deterministic for exact bench entries.
  std::size_t max_parallel_clients = 0;
  /// Ship per-node MetricScope shards to a collector node. Telemetry is
  /// traffic too: switch it off when asserting exact bytes-on-wire.
  bool telemetry = true;
  /// Optional seeded fault model applied to the fabric (chaos runs).
  std::optional<dist::SimNet::FaultConfig> faults;
  /// Transfer budget for client ops and replica syncs.
  RetryPolicy retry = {};
};

/// One client's evaluation session: given the client index and its
/// ResultCache, run the search and return the report.
using ClientSession =
    std::function<EvaluationReport(std::size_t client, ResultCache& cache)>;

/// Runs `options.n_clients` cooperative sessions against one repository
/// tier and folds the outcomes into a CooperativeReport.
CooperativeReport run_cooperative_fleet(std::size_t total_candidates,
                                        const FleetOptions& options,
                                        const ClientSession& session);

/// Runs `n_clients` cooperative searches of `graph` over `data`
/// concurrently (one thread per client, each client evaluating serially so
/// the division of labour is attributable). `evaluator_threads` sets each
/// client's internal parallelism.
CooperativeReport run_cooperative_search(const TEGraph& graph,
                                         const Dataset& data,
                                         const CrossValidator& cv,
                                         Metric metric, std::size_t n_clients,
                                         std::size_t evaluator_threads = 1);

/// Fleet-shaped variant of the tabular search (sharding, bounded client
/// parallelism, faults — everything FleetOptions can express).
CooperativeReport run_cooperative_search(const TEGraph& graph,
                                         const Dataset& data,
                                         const CrossValidator& cv,
                                         Metric metric,
                                         const FleetOptions& options);

/// Cooperative Fig-11 forecast search across a fleet.
CooperativeReport run_cooperative_forecast_search(
    const ts::ForecastGraph& graph, const TimeSeries& series,
    const TimeSeriesSlidingSplit& cv, Metric metric,
    const FleetOptions& options);

}  // namespace coda::darr
