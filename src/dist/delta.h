// Delta encoding (Section III): "the home data source sends the delta
// between the latest version of o1 and a previous version ... considerably
// smaller than version 3 of o1".
//
// The codec is an rsync-style block matcher: the base is indexed by
// fixed-size block hashes; the target is scanned with a rolling hash,
// emitting COPY(base_offset, length) for matched runs and ADD(bytes) for
// novel data. apply_delta(base, delta) reconstructs the target exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "src/util/serialization.h"

namespace coda::dist {

/// One delta instruction.
struct DeltaOp {
  enum class Kind : std::uint8_t { kCopy = 0, kAdd = 1 };
  Kind kind = Kind::kAdd;
  // kCopy: [offset, offset+length) in the base.
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  // kAdd: literal bytes.
  Bytes literal;
};

/// An encoded delta between two versions of an object.
struct Delta {
  std::uint64_t base_version = 0;
  std::uint64_t target_version = 0;
  std::uint64_t target_size = 0;
  std::vector<DeltaOp> ops;

  /// Bytes this delta occupies on the wire (header + ops + literals).
  std::size_t encoded_size() const;

  Bytes serialize() const;
  static Delta deserialize(const Bytes& buffer);
};

/// Codec tuning.
struct DeltaConfig {
  std::size_t block_size = 64;  ///< match granularity (bytes)
};

/// Computes a delta transforming `base` into `target`.
Delta compute_delta(const Bytes& base, const Bytes& target,
                    const DeltaConfig& config = DeltaConfig());

/// Reconstructs the target from `base` and `delta`; throws DecodeError on a
/// corrupt delta (e.g. COPY out of the base's range).
Bytes apply_delta(const Bytes& base, const Delta& delta);

}  // namespace coda::dist
