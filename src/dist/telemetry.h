// Telemetry shipping over the simulated network (DESIGN.md §12): a
// TelemetryReporter periodically diffs its node's MetricScope registry
// against the last *acknowledged* snapshot and sends the sparse delta to
// the collector node as one SimNet message — so telemetry traffic is
// metered, traced, and subject to the PR-3 fault model and retry policy
// like any other protocol traffic.
//
// Loss safety: the acked base only advances when transfer_with_retry
// succeeds. A dropped/partitioned report leaves the base untouched, so
// the next flush re-ships the same increments merged with newer ones —
// aggregates at the collector can lag but never corrupt (counters and
// histogram buckets travel as exact integer increments; see
// src/obs/timeseries.h for the delta semantics).
#pragma once

#include <cstdint>
#include <string>

#include "src/dist/retry.h"
#include "src/dist/sim_net.h"
#include "src/obs/collector.h"
#include "src/obs/timeseries.h"
#include "src/util/retry.h"

namespace coda::dist {

class TelemetryReporter {
 public:
  /// Reports `source` (typically a node's MetricScope registry) from
  /// SimNet node `self` to `collector_node`, folding delivered deltas
  /// into `sink` under the name `report_as`. All pointers must outlive
  /// the reporter.
  TelemetryReporter(SimNet* net, NodeId self, NodeId collector_node,
                    obs::TelemetryCollector* sink,
                    const obs::MetricsRegistry* source, std::string report_as,
                    RetryPolicy policy = {});

  /// Snapshots the source, ships the delta since the acked base, and on
  /// delivery ingests it at the collector and advances the base. Returns
  /// true when the collector is up to date after the call (delivered, or
  /// nothing had changed); false when the report failed and will be
  /// retransmitted by a later flush. Never throws on network failure.
  bool flush();

  const std::string& report_as() const { return report_as_; }
  std::uint64_t reports_sent() const { return sent_; }
  std::uint64_t reports_failed() const { return failed_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  SimNet* net_;
  NodeId self_;
  NodeId collector_node_;
  obs::TelemetryCollector* sink_;
  const obs::MetricsRegistry* source_;
  std::string report_as_;
  RetryPolicy policy_;
  obs::MetricsSnapshot acked_;
  std::uint64_t sent_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t bytes_sent_ = 0;
};

}  // namespace coda::dist
