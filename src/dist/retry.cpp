#include "src/dist/retry.h"

#include "src/obs/event_log.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace coda::dist {

TransferResult transfer_with_retry(SimNet& net, NodeId from, NodeId to,
                                   std::size_t bytes,
                                   const RetryPolicy& policy,
                                   const std::string& op) {
  static auto& retry_attempts = obs::counter("retry.attempts");
  static auto& retry_gave_up = obs::counter("retry.gave_up");
  // Each attempt's network span parents under the caller's ambient span,
  // so retries across a healed partition stay in one causal tree.
  const MessageHeader header{obs::Tracer::current_context(), op};
  BackoffSchedule schedule(policy);
  while (true) {
    TransferResult result = net.transfer(from, to, bytes, header);
    if (result.ok()) return result;
    // The failed attempt itself costs simulated time (a drop burns the
    // one-way latency before the loss is noticed).
    if (result.seconds > 0.0) net.advance(result.seconds);
    const auto wait = schedule.next();
    if (!wait.has_value()) {
      retry_gave_up.inc();
      obs::event(obs::Severity::kError, "retry.gave_up",
                 {{"op", op},
                  {"from", net.node_name(from)},
                  {"to", net.node_name(to)},
                  {"attempts", std::to_string(schedule.retries() + 1)},
                  {"last_failure", failure_name(result.failure)}});
      throw NetworkError("transfer_with_retry: '" + op + "' " +
                         net.node_name(from) + " -> " + net.node_name(to) +
                         " gave up after " +
                         std::to_string(schedule.retries() + 1) +
                         " attempts (last failure: " +
                         failure_name(result.failure) + ")");
    }
    retry_attempts.inc();
    net.advance(*wait);
  }
}

}  // namespace coda::dist
