#include "src/dist/remote_service.h"

#include "src/obs/obs.h"

namespace coda::dist {

RemoteModelService::RemoteModelService(SimNet* net, NodeId self,
                                       std::unique_ptr<Estimator> model)
    : net_(net), self_(self), model_(std::move(model)) {
  require(net != nullptr && model_ != nullptr,
          "RemoteModelService: null dependency");
}

void RemoteModelService::fit(NodeId caller, const Matrix& X,
                             const std::vector<double>& y) {
  static auto& fit_calls = obs::counter("remote.fit.calls");
  static auto& bytes_in = obs::counter("remote.bytes_in");
  static auto& bytes_out = obs::counter("remote.bytes_out");
  const obs::ScopedSpan span("remote.fit");
  const std::size_t request =
      matrix_bytes(X) + y.size() * sizeof(double) + 16;
  net_->transfer(caller, self_, request);
  model_->fit(X, y);
  net_->transfer(self_, caller, 16);  // ack
  ++stats_.fit_calls;
  stats_.bytes_in += request;
  stats_.bytes_out += 16;
  fit_calls.inc();
  bytes_in.inc(request);
  bytes_out.inc(16);
}

std::vector<double> RemoteModelService::predict(NodeId caller,
                                                const Matrix& X) {
  static auto& predict_calls = obs::counter("remote.predict.calls");
  static auto& bytes_in = obs::counter("remote.bytes_in");
  static auto& bytes_out = obs::counter("remote.bytes_out");
  const obs::ScopedSpan span("remote.predict");
  const std::size_t request = matrix_bytes(X);
  net_->transfer(caller, self_, request);
  auto predictions = model_->predict(X);
  const std::size_t response = predictions.size() * sizeof(double) + 16;
  net_->transfer(self_, caller, response);
  ++stats_.predict_calls;
  stats_.bytes_in += request;
  stats_.bytes_out += response;
  predict_calls.inc();
  bytes_in.inc(request);
  bytes_out.inc(response);
  return predictions;
}

}  // namespace coda::dist
