#include "src/dist/remote_service.h"

#include <atomic>

#include "src/dist/retry.h"
#include "src/obs/obs.h"

namespace coda::dist {

namespace {

std::string next_instance_prefix() {
  // Central id source: obs::reset_all() rewinds it so back-to-back runs
  // in one process mint identical instance names.
  return "remote.svc#" +
         std::to_string(obs::next_instance_id("remote.svc")) + ".";
}

}  // namespace

RemoteModelService::RemoteModelService(SimNet* net, NodeId self,
                                       std::unique_ptr<Estimator> model,
                                       RetryPolicy retry)
    : net_(net), self_(self), model_(std::move(model)), retry_(retry) {
  require(net != nullptr && model_ != nullptr,
          "RemoteModelService: null dependency");
  retry_.validate();
  const std::string prefix = next_instance_prefix();
  stats_.fit_calls = &obs::counter(prefix + "fit_calls");
  stats_.predict_calls = &obs::counter(prefix + "predict_calls");
  stats_.bytes_in = &obs::counter(prefix + "bytes_in");
  stats_.bytes_out = &obs::counter(prefix + "bytes_out");
  // Fleet telemetry: remote.* families dual-write this node's shard.
  auto& scope = obs::MetricScope::for_node(net_->node_name(self_));
  const auto family = [&scope](const char* name) {
    return obs::ScopedCounter(&obs::counter(name), &scope.counter(name));
  };
  family_.fit_calls = family("remote.fit.calls");
  family_.predict_calls = family("remote.predict.calls");
  family_.bytes_in = family("remote.bytes_in");
  family_.bytes_out = family("remote.bytes_out");
}

void RemoteModelService::fit(NodeId caller, const Matrix& X,
                             const std::vector<double>& y) {
  obs::ScopedSpan span("remote.fit");
  span.set_node(net_->node_name(self_));
  const std::size_t request =
      matrix_bytes(X) + y.size() * sizeof(double) + 16;
  transfer_with_retry(*net_, caller, self_, request, retry_, "remote.fit");
  {
    std::lock_guard<std::mutex> lock(model_mutex_);
    model_->fit(X, y);
  }
  transfer_with_retry(*net_, self_, caller, 16, retry_, "remote.fit");  // ack
  stats_.fit_calls->inc();
  stats_.bytes_in->inc(request);
  stats_.bytes_out->inc(16);
  family_.fit_calls.inc();
  family_.bytes_in.inc(request);
  family_.bytes_out.inc(16);
}

std::vector<double> RemoteModelService::predict(NodeId caller,
                                                const Matrix& X) {
  obs::ScopedSpan span("remote.predict");
  span.set_node(net_->node_name(self_));
  const std::size_t request = matrix_bytes(X);
  transfer_with_retry(*net_, caller, self_, request, retry_,
                      "remote.predict");
  std::vector<double> predictions;
  {
    std::lock_guard<std::mutex> lock(model_mutex_);
    predictions = model_->predict(X);
  }
  const std::size_t response = predictions.size() * sizeof(double) + 16;
  transfer_with_retry(*net_, self_, caller, response, retry_,
                      "remote.predict");
  stats_.predict_calls->inc();
  stats_.bytes_in->inc(request);
  stats_.bytes_out->inc(response);
  family_.predict_calls.inc();
  family_.bytes_in.inc(request);
  family_.bytes_out.inc(response);
  return predictions;
}

RemoteModelService::CallStats RemoteModelService::stats() const {
  CallStats out;
  out.fit_calls = stats_.fit_calls->value();
  out.predict_calls = stats_.predict_calls->value();
  out.bytes_in = stats_.bytes_in->value();
  out.bytes_out = stats_.bytes_out->value();
  return out;
}

}  // namespace coda::dist
