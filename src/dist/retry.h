// Retrying transfer for the distributed tier: every client-side network
// call (DARR ops, cache pulls, store pushes, remote model calls,
// replication syncs) goes through transfer_with_retry(), which retries a
// failed SimNet::transfer() under a shared RetryPolicy. Backoff waits are
// charged to the SimNet *logical* clock — no wall-clock sleeping — which
// is what lets transient partition and crash windows heal mid-operation
// in chaos runs: each retry moves the clock forward and eventually walks
// out of the window (DESIGN.md §9).
#pragma once

#include <string>

#include "src/dist/sim_net.h"
#include "src/util/retry.h"

namespace coda::dist {

/// Attempts net.transfer(from, to, bytes) until it succeeds or `policy`'s
/// attempt/deadline budget runs out. Each failed attempt charges its cost
/// plus the backoff wait to the logical clock. Returns the successful
/// TransferResult; throws NetworkError (tagged with `op` and the last
/// failure kind) on give-up. Increments `retry.attempts` per retry taken
/// and `retry.gave_up` per exhausted budget.
TransferResult transfer_with_retry(SimNet& net, NodeId from, NodeId to,
                                   std::size_t bytes,
                                   const RetryPolicy& policy,
                                   const std::string& op);

}  // namespace coda::dist
