#include "src/dist/home_store.h"

#include <algorithm>

#include "src/dist/retry.h"
#include "src/obs/obs.h"

namespace coda::dist {

std::string push_mode_name(PushMode mode) {
  switch (mode) {
    case PushMode::kFullValue: return "full";
    case PushMode::kDelta: return "delta";
    case PushMode::kNotifyOnly: return "notify";
  }
  throw InvalidArgument("push_mode_name: unknown mode");
}

HomeDataStore::HomeDataStore(SimNet* net, NodeId self)
    : HomeDataStore(net, self, Config()) {}

HomeDataStore::HomeDataStore(SimNet* net, NodeId self, Config config)
    : net_(net), self_(self), config_(config) {
  require(net != nullptr, "HomeDataStore: null network");
  require(config_.max_history >= 1, "HomeDataStore: max_history must be >= 1");
  require(config_.min_delta_ratio > 0.0 && config_.min_delta_ratio <= 1.0,
          "HomeDataStore: min_delta_ratio out of (0,1]");
  config_.retry.validate();
  // Fleet telemetry: homestore.* families dual-write this node's shard.
  // Bound here (not per call) because fetch/push run on caller threads.
  auto& scope = obs::MetricScope::for_node(net_->node_name(self_));
  const auto family = [&scope](const char* name) {
    return obs::ScopedCounter(&obs::counter(name), &scope.counter(name));
  };
  family_.put = family("homestore.put");
  family_.push_full = family("homestore.push.full");
  family_.push_delta = family("homestore.push.delta");
  family_.push_notify = family("homestore.push.notify");
  family_.push_lost = family("homestore.push.lost");
  family_.fetch_not_modified = family("homestore.fetch.not_modified");
  family_.fetch_delta = family("homestore.fetch.delta");
  family_.fetch_full = family("homestore.fetch.full");
  family_.delta_bytes = obs::ScopedHistogram(
      &obs::histogram("homestore.delta.bytes",
                      obs::Histogram::default_byte_bounds()),
      &scope.histogram("homestore.delta.bytes",
                       obs::Histogram::default_byte_bounds()));
}

HomeDataStore::ObjectState& HomeDataStore::state_of(const std::string& key) {
  auto it = objects_.find(key);
  if (it == objects_.end()) {
    throw NotFound("HomeDataStore: no object '" + key + "'");
  }
  return it->second;
}

const HomeDataStore::ObjectState& HomeDataStore::state_of(
    const std::string& key) const {
  auto it = objects_.find(key);
  if (it == objects_.end()) {
    throw NotFound("HomeDataStore: no object '" + key + "'");
  }
  return it->second;
}

void HomeDataStore::put(const std::string& key, Bytes value) {
  require(!key.empty(), "HomeDataStore: empty key");
  family_.put.inc();
  ObjectState& state = objects_[key];
  const Bytes previous = state.current;

  if (state.version > 0) {
    state.recent[state.version] = state.current;
  }
  ++state.version;
  state.current = std::move(value);

  // Trim retained history, then refresh the precomputed deltas
  // d(o, k-i, k) for every retained base (Section III).
  while (state.recent.size() > config_.max_history) {
    state.recent.erase(state.recent.begin());
  }
  state.deltas.clear();
  for (const auto& [old_version, old_value] : state.recent) {
    Delta d = compute_delta(old_value, state.current, config_.delta);
    d.base_version = old_version;
    d.target_version = state.version;
    state.deltas.emplace(old_version, std::move(d));
  }

  push_update(key, state, previous);
}

void HomeDataStore::push_update(const std::string& key, ObjectState& state,
                                const Bytes& previous_value) {
  if (state.leases.empty()) return;
  obs::ScopedSpan span("homestore.push_update");
  span.set_node(net_->node_name(self_));
  span.tag("key", key);
  const double now = net_->now();
  for (auto& lease : state.leases) {
    if (lease.expires_at <= now) {  // expired: no push
      obs::event(obs::Severity::kWarn, "homestore.lease.expired",
                 {{"key", key},
                  {"client", net_->node_name(lease.client)},
                  {"expired_at", std::to_string(lease.expires_at)},
                  {"clock", std::to_string(now)}});
      continue;
    }
    PushMessage msg;
    msg.key = key;
    msg.version = state.version;
    msg.mode = lease.mode;
    switch (lease.mode) {
      case PushMode::kFullValue:
        msg.full_value = state.current;
        msg.wire_bytes = state.current.size() + request_size(key);
        break;
      case PushMode::kDelta: {
        // Delta relative to what this subscriber last received; fall back
        // to a full value when that base is no longer retained.
        auto it = state.deltas.find(lease.last_pushed_version);
        if (it != state.deltas.end()) {
          msg.delta = it->second;
          msg.wire_bytes = it->second.encoded_size() + request_size(key);
        } else if (lease.last_pushed_version == 0 && !previous_value.empty() &&
                   state.version > 1) {
          msg.mode = PushMode::kFullValue;
          msg.full_value = state.current;
          msg.wire_bytes = state.current.size() + request_size(key);
        } else {
          msg.mode = PushMode::kFullValue;
          msg.full_value = state.current;
          msg.wire_bytes = state.current.size() + request_size(key);
        }
        break;
      }
      case PushMode::kNotifyOnly: {
        // Hint: how much the object changed (encoded delta size when
        // available, else the full size).
        auto it = state.deltas.find(state.version - 1);
        msg.change_size_hint = it != state.deltas.end()
                                   ? it->second.encoded_size()
                                   : state.current.size();
        msg.wire_bytes = request_size(key) + 16;
        break;
      }
    }
    try {
      transfer_with_retry(*net_, self_, lease.client, msg.wire_bytes,
                          config_.retry, "homestore.push");
    } catch (const NetworkError&) {
      // Push lost: keep last_pushed_version where it was, so the next push
      // ships a delta from the base this subscriber actually holds (or the
      // subscriber pulls when its monitor notices the staleness).
      family_.push_lost.inc();
      obs::event(obs::Severity::kWarn, "homestore.push.lost",
                 {{"key", key},
                  {"client", net_->node_name(lease.client)},
                  {"mode", push_mode_name(msg.mode)}});
      continue;
    }
    switch (msg.mode) {
      case PushMode::kFullValue: family_.push_full.inc(); break;
      case PushMode::kDelta:
        family_.push_delta.inc();
        family_.delta_bytes.observe(static_cast<double>(msg.wire_bytes));
        break;
      case PushMode::kNotifyOnly: family_.push_notify.inc(); break;
    }
    lease.last_pushed_version = state.version;
    if (push_handler_) push_handler_(lease.client, msg);
  }
}

std::uint64_t HomeDataStore::version(const std::string& key) const {
  auto it = objects_.find(key);
  return it == objects_.end() ? 0 : it->second.version;
}

const Bytes& HomeDataStore::value(const std::string& key) const {
  return state_of(key).current;
}

HomeDataStore::FetchResult HomeDataStore::fetch(const std::string& key,
                                                NodeId requester,
                                                std::uint64_t have_version) {
  const ObjectState& state = state_of(key);
  obs::ScopedSpan span("homestore.fetch");
  span.set_node(net_->node_name(self_));
  span.tag("key", key);
  FetchResult result;
  result.version = state.version;
  result.request_bytes = request_size(key);
  transfer_with_retry(*net_, requester, self_, result.request_bytes,
                      config_.retry, "homestore.fetch");

  if (have_version == state.version) {
    // Up to date: tiny "no change" response.
    family_.fetch_not_modified.inc();
    result.is_delta = false;
    result.response_bytes = 16;
    transfer_with_retry(*net_, self_, requester, result.response_bytes,
                        config_.retry, "homestore.fetch");
    return result;
  }

  auto it = state.deltas.find(have_version);
  if (it != state.deltas.end() &&
      static_cast<double>(it->second.encoded_size()) <
          config_.min_delta_ratio * static_cast<double>(state.current.size())) {
    family_.fetch_delta.inc();
    result.is_delta = true;
    result.delta = it->second;
    result.response_bytes = it->second.encoded_size();
    family_.delta_bytes.observe(
        static_cast<double>(result.response_bytes));
  } else {
    family_.fetch_full.inc();
    result.is_delta = false;
    result.full_value = state.current;
    result.response_bytes = state.current.size();
  }
  transfer_with_retry(*net_, self_, requester, result.response_bytes,
                      config_.retry, "homestore.fetch");
  return result;
}

void HomeDataStore::subscribe(const std::string& key, NodeId client,
                              double duration, PushMode mode) {
  require(duration > 0.0, "HomeDataStore: lease duration must be positive");
  ObjectState& state = objects_[key];
  // Subscription handshake costs one small message.
  transfer_with_retry(*net_, client, self_, request_size(key) + 16,
                      config_.retry, "homestore.subscribe");
  const double expires = net_->now() + duration;
  for (auto& lease : state.leases) {
    if (lease.client == client) {
      lease.expires_at = expires;
      lease.mode = mode;
      return;
    }
  }
  Lease lease;
  lease.client = client;
  lease.expires_at = expires;
  lease.mode = mode;
  lease.last_pushed_version = 0;
  state.leases.push_back(lease);
}

void HomeDataStore::renew(const std::string& key, NodeId client,
                          double duration) {
  require(duration > 0.0, "HomeDataStore: lease duration must be positive");
  ObjectState& state = state_of(key);
  transfer_with_retry(*net_, client, self_, request_size(key) + 16,
                      config_.retry, "homestore.renew");
  for (auto& lease : state.leases) {
    if (lease.client == client) {
      lease.expires_at = net_->now() + duration;
      return;
    }
  }
  throw NotFound("HomeDataStore::renew: no lease for client on '" + key +
                 "'");
}

void HomeDataStore::cancel(const std::string& key, NodeId client) {
  ObjectState& state = state_of(key);
  transfer_with_retry(*net_, client, self_, request_size(key) + 16,
                      config_.retry, "homestore.cancel");
  auto& leases = state.leases;
  leases.erase(std::remove_if(leases.begin(), leases.end(),
                              [client](const Lease& l) {
                                return l.client == client;
                              }),
               leases.end());
}

bool HomeDataStore::has_lease(const std::string& key, NodeId client) const {
  auto it = objects_.find(key);
  if (it == objects_.end()) return false;
  for (const auto& lease : it->second.leases) {
    if (lease.client == client && lease.expires_at > net_->now()) return true;
  }
  return false;
}

std::size_t HomeDataStore::active_leases(const std::string& key) const {
  auto it = objects_.find(key);
  if (it == objects_.end()) return 0;
  std::size_t n = 0;
  for (const auto& lease : it->second.leases) {
    if (lease.expires_at > net_->now()) ++n;
  }
  return n;
}

std::vector<std::uint64_t> HomeDataStore::retained_delta_bases(
    const std::string& key) const {
  const ObjectState& state = state_of(key);
  std::vector<std::uint64_t> bases;
  bases.reserve(state.deltas.size());
  for (const auto& [base, delta] : state.deltas) bases.push_back(base);
  return bases;
}

}  // namespace coda::dist
