#include "src/dist/sim_net.h"

namespace coda::dist {

NodeId SimNet::add_node(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  require(!name.empty(), "SimNet: node name must be non-empty");
  for (const auto& existing : node_names_) {
    require(existing != name, "SimNet: duplicate node name '" + name + "'");
  }
  node_names_.push_back(name);
  return node_names_.size() - 1;
}

const std::string& SimNet::node_name(NodeId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  check_node(id);
  return node_names_[id];
}

double SimNet::transfer(NodeId from, NodeId to, std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  check_node(from);
  check_node(to);
  require(from != to, "SimNet: self-transfer");
  const double seconds =
      config_.latency_seconds +
      static_cast<double>(bytes) / config_.bandwidth_bytes_per_sec;
  auto& stats = links_[{from, to}];
  ++stats.messages;
  stats.bytes += bytes;
  stats.simulated_seconds += seconds;
  return seconds;
}

double SimNet::now() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return clock_;
}

void SimNet::advance(double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  require(seconds >= 0.0, "SimNet: cannot rewind the clock");
  clock_ += seconds;
}

LinkStats SimNet::link(NodeId from, NodeId to) const {
  std::lock_guard<std::mutex> lock(mutex_);
  check_node(from);
  check_node(to);
  auto it = links_.find({from, to});
  return it == links_.end() ? LinkStats{} : it->second;
}

LinkStats SimNet::total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  LinkStats total;
  for (const auto& [pair, stats] : links_) {
    total.messages += stats.messages;
    total.bytes += stats.bytes;
    total.simulated_seconds += stats.simulated_seconds;
  }
  return total;
}

void SimNet::reset_stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  links_.clear();
}

}  // namespace coda::dist
