#include "src/dist/sim_net.h"

#include <atomic>
#include <utility>
#include <vector>

#include "src/obs/event_log.h"

namespace coda::dist {

namespace {

std::string next_instance_prefix() {
  // Central id source: obs::reset_all() rewinds it so back-to-back runs
  // in one process mint identical instance names.
  return "simnet.net#" + std::to_string(obs::next_instance_id("simnet.net")) +
         ".";
}

// SplitMix64 finalizer — stateless and platform-stable, so a link's fault
// stream is a pure function of (seed, salt, from, to, message index).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

double unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

// Distinct fault streams per link: drop / spike / collapse draws must be
// independent of each other or a high drop probability would correlate
// with spikes on the surviving messages.
constexpr std::uint64_t kDropSalt = 0xD509;
constexpr std::uint64_t kSpikeSalt = 0x591C3;
constexpr std::uint64_t kCollapseSalt = 0xC0111A;

}  // namespace

std::string failure_name(TransferResult::Failure failure) {
  switch (failure) {
    case TransferResult::Failure::kNone:
      return "none";
    case TransferResult::Failure::kDropped:
      return "dropped";
    case TransferResult::Failure::kPartitioned:
      return "partitioned";
    case TransferResult::Failure::kNodeDown:
      return "node_down";
  }
  return "unknown";
}

SimNet::SimNet(Config config) : config_(config) {
  require(config.latency_seconds >= 0.0 &&
              config.bandwidth_bytes_per_sec > 0.0,
          "SimNet: bad configuration");
  const std::string prefix = next_instance_prefix();
  total_messages_ = &obs::counter(prefix + "messages");
  total_bytes_ = &obs::counter(prefix + "bytes");
  total_seconds_ = &obs::gauge(prefix + "simulated_seconds");
  // Pre-register the fault/retry families so exported snapshots (and the
  // golden metrics-key test) list them even for fault-free runs.
  obs::counter("net.fault.dropped");
  obs::counter("net.fault.partitioned");
  obs::counter("net.fault.node_down");
  obs::counter("net.fault.latency_spikes");
  obs::counter("retry.attempts");
  obs::counter("retry.gave_up");
}

NodeId SimNet::add_node(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  require(!name.empty(), "SimNet: node name must be non-empty");
  for (const auto& existing : node_names_) {
    require(existing != name, "SimNet: duplicate node name '" + name + "'");
  }
  node_names_.push_back(name);
  return node_names_.size() - 1;
}

const std::string& SimNet::node_name(NodeId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  check_node(id);
  return node_names_[id];
}

TransferResult SimNet::transfer(NodeId from, NodeId to, std::size_t bytes,
                                const MessageHeader& header) {
  // Process-wide wire families, aggregated over every SimNet instance.
  static auto& messages_sent = obs::counter("simnet.messages");
  static auto& bytes_sent = obs::counter("simnet.bytes_sent");
  static auto& transfer_seconds =
      obs::histogram("simnet.transfer.seconds",
                     obs::Histogram::exponential_bounds(1e-3, 4.0, 10));
  static auto& fault_dropped = obs::counter("net.fault.dropped");
  static auto& fault_partitioned = obs::counter("net.fault.partitioned");
  static auto& fault_node_down = obs::counter("net.fault.node_down");
  static auto& fault_spikes = obs::counter("net.fault.latency_spikes");

  TransferResult result;
  double start_clock = 0.0;
  std::string from_name;
  std::string to_name;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    check_node(from);
    check_node(to);
    require(from != to, "SimNet: self-transfer");
    start_clock = clock_;
    from_name = node_names_[from];
    to_name = node_names_[to];

    // Partition / crash checks come before the drop draw and do NOT consume
    // a message index: a transfer attempted into a partition window leaves
    // the link's stochastic fault stream exactly where it was, so the fault
    // schedule past the window is independent of how often callers retried
    // into it.
    [&] {
      if (crashed_locked(from) || crashed_locked(to)) {
        result.failure = TransferResult::Failure::kNodeDown;
        fault_node_down.inc();
        ++fault_stats_.node_down;
        return;
      }
      if (partitioned_locked(from, to)) {
        result.failure = TransferResult::Failure::kPartitioned;
        fault_partitioned.inc();
        ++fault_stats_.partitioned;
        return;
      }

      double latency = config_.latency_seconds;
      double bandwidth = config_.bandwidth_bytes_per_sec;
      if (faults_enabled_) {
        const std::size_t index = link_attempts_[{from, to}]++;
        double drop_p = faults_.drop_probability;
        auto it = link_drop_override_.find({from, to});
        if (it != link_drop_override_.end()) drop_p = it->second;
        if (drop_p > 0.0 &&
            fault_draw_locked(kDropSalt, from, to, index) < drop_p) {
          // The message left the sender and died in flight: charge the
          // one-way latency, count the attempt on the link, but no payload
          // bytes land.
          result.failure = TransferResult::Failure::kDropped;
          result.seconds = latency;
          auto& stats = links_[{from, to}];
          ++stats.messages;
          stats.simulated_seconds += latency;
          total_messages_->inc();
          total_seconds_->add(latency);
          messages_sent.inc();
          fault_dropped.inc();
          ++fault_stats_.dropped;
          return;
        }
        if (faults_.latency_spike_probability > 0.0 &&
            fault_draw_locked(kSpikeSalt, from, to, index) <
                faults_.latency_spike_probability) {
          latency += faults_.latency_spike_seconds;
          fault_spikes.inc();
          ++fault_stats_.latency_spikes;
        }
        if (faults_.bandwidth_collapse_probability > 0.0 &&
            fault_draw_locked(kCollapseSalt, from, to, index) <
                faults_.bandwidth_collapse_probability) {
          bandwidth *= faults_.bandwidth_collapse_factor;
        }
      }

      const double seconds = latency + static_cast<double>(bytes) / bandwidth;
      result.seconds = seconds;
      auto& stats = links_[{from, to}];
      ++stats.messages;
      stats.bytes += bytes;
      stats.simulated_seconds += seconds;
      total_messages_->inc();
      total_bytes_->inc(bytes);
      total_seconds_->add(seconds);
      messages_sent.inc();
      bytes_sent.inc(bytes);
      transfer_seconds.observe(seconds);
    }();
  }

  // Causal recording happens outside the fabric lock (the tracer and the
  // flight recorder have their own synchronisation).
  const std::string op = header.op.empty() ? "transfer" : header.op;
  if (header.trace.valid()) {
    auto& tracer = obs::Tracer::instance();
    tracer.anchor(header.trace.trace_id, tracer.now_seconds(), start_clock);
    std::vector<std::pair<std::string, std::string>> tags = {
        {"from", from_name},
        {"to", to_name},
        {"bytes", std::to_string(bytes)}};
    if (!result.ok()) tags.emplace_back("failure", failure_name(result.failure));
    tracer.record_span("net." + op, header.trace, to_name,
                       obs::ClockDomain::kLogical, start_clock,
                       result.seconds, std::move(tags));
  }
  if (!result.ok()) {
    obs::event(obs::Severity::kWarn,
               "net.fault." + failure_name(result.failure),
               {{"op", op},
                {"from", from_name},
                {"to", to_name},
                {"clock", std::to_string(start_clock)}});
  }
  return result;
}

void SimNet::set_faults(FaultConfig faults) {
  require(faults.drop_probability >= 0.0 && faults.drop_probability < 1.0,
          "SimNet: drop probability must lie in [0, 1)");
  require(faults.latency_spike_probability >= 0.0 &&
              faults.latency_spike_probability <= 1.0,
          "SimNet: spike probability must lie in [0, 1]");
  require(faults.latency_spike_seconds >= 0.0,
          "SimNet: spike latency must be non-negative");
  require(faults.bandwidth_collapse_probability >= 0.0 &&
              faults.bandwidth_collapse_probability <= 1.0,
          "SimNet: collapse probability must lie in [0, 1]");
  require(faults.bandwidth_collapse_factor > 0.0 &&
              faults.bandwidth_collapse_factor <= 1.0,
          "SimNet: collapse factor must lie in (0, 1]");
  std::lock_guard<std::mutex> lock(mutex_);
  faults_ = faults;
  faults_enabled_ = true;
}

void SimNet::set_link_drop_probability(NodeId from, NodeId to,
                                       double probability) {
  require(probability >= 0.0 && probability < 1.0,
          "SimNet: drop probability must lie in [0, 1)");
  std::lock_guard<std::mutex> lock(mutex_);
  check_node(from);
  check_node(to);
  link_drop_override_[{from, to}] = probability;
  faults_enabled_ = true;
}

void SimNet::partition(NodeId from, NodeId to, double from_time,
                       double until_time) {
  require(until_time > from_time, "SimNet: empty partition window");
  std::lock_guard<std::mutex> lock(mutex_);
  check_node(from);
  check_node(to);
  partitions_.push_back(Window{from, to, from_time, until_time});
}

void SimNet::heal_partitions() {
  std::lock_guard<std::mutex> lock(mutex_);
  partitions_.clear();
}

void SimNet::crash_node(NodeId id, double from_time, double until_time) {
  require(until_time > from_time, "SimNet: empty crash window");
  std::lock_guard<std::mutex> lock(mutex_);
  check_node(id);
  crashes_.push_back(Window{id, id, from_time, until_time});
}

void SimNet::restart_node(NodeId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  check_node(id);
  for (auto it = crashes_.begin(); it != crashes_.end();) {
    it = it->from == id ? crashes_.erase(it) : it + 1;
  }
}

bool SimNet::node_up(NodeId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  check_node(id);
  return !crashed_locked(id);
}

double SimNet::now() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return clock_;
}

void SimNet::advance(double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  require(seconds >= 0.0, "SimNet: cannot rewind the clock");
  clock_ += seconds;
}

LinkStats SimNet::link(NodeId from, NodeId to) const {
  std::lock_guard<std::mutex> lock(mutex_);
  check_node(from);
  check_node(to);
  auto it = links_.find({from, to});
  return it == links_.end() ? LinkStats{} : it->second;
}

LinkStats SimNet::total() const {
  LinkStats total;
  total.messages = total_messages_->value();
  total.bytes = total_bytes_->value();
  total.simulated_seconds = total_seconds_->value();
  return total;
}

SimNet::FaultStats SimNet::fault_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fault_stats_;
}

void SimNet::reset_stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  links_.clear();
  fault_stats_ = FaultStats{};
  total_messages_->reset();
  total_bytes_->reset();
  total_seconds_->reset();
}

bool SimNet::partitioned_locked(NodeId from, NodeId to) const {
  for (const auto& w : partitions_) {
    if (w.from == from && w.to == to && clock_ >= w.start && clock_ < w.end) {
      return true;
    }
  }
  return false;
}

bool SimNet::crashed_locked(NodeId id) const {
  for (const auto& w : crashes_) {
    if (w.from == id && clock_ >= w.start && clock_ < w.end) return true;
  }
  return false;
}

double SimNet::fault_draw_locked(std::uint64_t salt, NodeId from, NodeId to,
                                 std::size_t index) const {
  std::uint64_t h = mix64(faults_.seed ^ salt);
  h = mix64(h ^ (static_cast<std::uint64_t>(from) + 1));
  h = mix64(h ^ ((static_cast<std::uint64_t>(to) + 1) << 20));
  h = mix64(h ^ static_cast<std::uint64_t>(index));
  return unit(h);
}

}  // namespace coda::dist
