#include "src/dist/sim_net.h"

#include <atomic>

namespace coda::dist {

namespace {

std::string next_instance_prefix() {
  static std::atomic<std::uint64_t> next{0};
  return "simnet.net#" +
         std::to_string(next.fetch_add(1, std::memory_order_relaxed)) + ".";
}

}  // namespace

SimNet::SimNet(Config config) : config_(config) {
  require(config.latency_seconds >= 0.0 &&
              config.bandwidth_bytes_per_sec > 0.0,
          "SimNet: bad configuration");
  const std::string prefix = next_instance_prefix();
  total_messages_ = &obs::counter(prefix + "messages");
  total_bytes_ = &obs::counter(prefix + "bytes");
  total_seconds_ = &obs::gauge(prefix + "simulated_seconds");
}

NodeId SimNet::add_node(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  require(!name.empty(), "SimNet: node name must be non-empty");
  for (const auto& existing : node_names_) {
    require(existing != name, "SimNet: duplicate node name '" + name + "'");
  }
  node_names_.push_back(name);
  return node_names_.size() - 1;
}

const std::string& SimNet::node_name(NodeId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  check_node(id);
  return node_names_[id];
}

double SimNet::transfer(NodeId from, NodeId to, std::size_t bytes) {
  // Process-wide wire families, aggregated over every SimNet instance.
  static auto& messages_sent = obs::counter("simnet.messages");
  static auto& bytes_sent = obs::counter("simnet.bytes_sent");
  static auto& transfer_seconds =
      obs::histogram("simnet.transfer.seconds",
                     obs::Histogram::exponential_bounds(1e-3, 4.0, 10));
  std::lock_guard<std::mutex> lock(mutex_);
  check_node(from);
  check_node(to);
  require(from != to, "SimNet: self-transfer");
  const double seconds =
      config_.latency_seconds +
      static_cast<double>(bytes) / config_.bandwidth_bytes_per_sec;
  auto& stats = links_[{from, to}];
  ++stats.messages;
  stats.bytes += bytes;
  stats.simulated_seconds += seconds;
  total_messages_->inc();
  total_bytes_->inc(bytes);
  total_seconds_->add(seconds);
  messages_sent.inc();
  bytes_sent.inc(bytes);
  transfer_seconds.observe(seconds);
  return seconds;
}

double SimNet::now() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return clock_;
}

void SimNet::advance(double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  require(seconds >= 0.0, "SimNet: cannot rewind the clock");
  clock_ += seconds;
}

LinkStats SimNet::link(NodeId from, NodeId to) const {
  std::lock_guard<std::mutex> lock(mutex_);
  check_node(from);
  check_node(to);
  auto it = links_.find({from, to});
  return it == links_.end() ? LinkStats{} : it->second;
}

LinkStats SimNet::total() const {
  LinkStats total;
  total.messages = total_messages_->value();
  total.bytes = total_bytes_->value();
  total.simulated_seconds = total_seconds_->value();
  return total;
}

void SimNet::reset_stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  links_.clear();
  total_messages_->reset();
  total_bytes_->reset();
  total_seconds_->reset();
}

}  // namespace coda::dist
