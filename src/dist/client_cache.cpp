#include "src/dist/client_cache.h"

#include "src/obs/obs.h"

namespace coda::dist {

ClientCache::ClientCache(SimNet* net, NodeId self, HomeDataStore* home)
    : net_(net), self_(self), home_(home) {
  require(net != nullptr && home != nullptr, "ClientCache: null dependency");
  require(self != home->node_id(),
          "ClientCache: client and home store must be distinct nodes");
  // Fleet telemetry: clientcache.* families dual-write this node's shard.
  auto& scope = obs::MetricScope::for_node(net_->node_name(self_));
  const auto family = [&scope](const char* name) {
    return obs::ScopedCounter(&obs::counter(name), &scope.counter(name));
  };
  family_.pulls = family("clientcache.pull.count");
  family_.bytes_received = family("clientcache.bytes_received");
  family_.bytes_saved = family("clientcache.delta.bytes_saved");
  family_.push_full = family("clientcache.push.full");
  family_.push_delta = family("clientcache.push.delta");
  family_.push_notify = family("clientcache.push.notify");
  family_.push_stale = family("clientcache.push.stale");
  family_.delta_bytes = obs::ScopedHistogram(
      &obs::histogram("clientcache.delta.bytes",
                      obs::Histogram::default_byte_bounds()),
      &scope.histogram("clientcache.delta.bytes",
                       obs::Histogram::default_byte_bounds()));
}

const Bytes& ClientCache::get(const std::string& key) {
  Entry& entry = entries_[key];
  ++stats_.pulls;
  family_.pulls.inc();
  obs::ScopedSpan span("clientcache.pull");
  span.tag("key", key);
  auto result = home_->fetch(key, self_, entry.version);
  stats_.bytes_received += result.response_bytes;
  family_.bytes_received.inc(result.response_bytes);
  if (result.version == entry.version) {
    ++stats_.not_modified_responses;
    return entry.value;
  }
  if (result.is_delta) {
    ++stats_.delta_responses;
    const std::size_t saved = home_->value(key).size() - result.response_bytes;
    stats_.bytes_saved_by_delta += saved;
    family_.bytes_saved.inc(saved);
    entry.value = apply_delta(entry.value, result.delta);
  } else {
    ++stats_.full_responses;
    entry.value = std::move(result.full_value);
  }
  entry.version = result.version;
  return entry.value;
}

const Bytes& ClientCache::cached(const std::string& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    throw NotFound("ClientCache: '" + key + "' not cached");
  }
  return it->second.value;
}

std::uint64_t ClientCache::version(const std::string& key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? 0 : it->second.version;
}

std::uint64_t ClientCache::staleness(const std::string& key) const {
  const std::uint64_t home_version = home_->version(key);
  const std::uint64_t local = version(key);
  return home_version > local ? home_version - local : 0;
}

void ClientCache::subscribe(const std::string& key, double duration,
                            PushMode mode) {
  home_->subscribe(key, self_, duration, mode);
}

void ClientCache::renew(const std::string& key, double duration) {
  home_->renew(key, self_, duration);
}

void ClientCache::cancel(const std::string& key) { home_->cancel(key, self_); }

void ClientCache::on_push(const PushMessage& message) {
  Entry& entry = entries_[message.key];
  stats_.bytes_received += message.wire_bytes;
  family_.bytes_received.inc(message.wire_bytes);
  // Replay guard: a push can arrive after a pull already advanced this
  // entry past it (lease expired mid-update -> monitor fell back to pull,
  // or a delayed push raced the response). Applying it again would
  // double-apply a delta or roll the value back — drop it instead.
  // Notify-only messages are exempt: they carry no payload and a stale
  // notification is harmless (notified_version only ever ratchets up).
  if (message.mode != PushMode::kNotifyOnly &&
      message.version <= entry.version) {
    ++stats_.stale_pushes;
    family_.push_stale.inc();
    obs::event(obs::Severity::kWarn, "clientcache.push.stale",
               {{"key", message.key},
                {"pushed_version", std::to_string(message.version)},
                {"have_version", std::to_string(entry.version)}});
    return;
  }
  switch (message.mode) {
    case PushMode::kFullValue:
      ++stats_.pushes_full;
      family_.push_full.inc();
      entry.value = message.full_value;
      entry.version = message.version;
      break;
    case PushMode::kDelta: {
      ++stats_.pushes_delta;
      family_.push_delta.inc();
      family_.delta_bytes.observe(static_cast<double>(message.wire_bytes));
      if (message.delta.base_version != entry.version) {
        // Base mismatch (e.g. missed push): fall back to a pull.
        ++stats_.delta_fallback_fetches;
        get(message.key);
        return;
      }
      const std::size_t saved =
          message.delta.target_size > message.wire_bytes
              ? static_cast<std::size_t>(message.delta.target_size) -
                    message.wire_bytes
              : 0;
      stats_.bytes_saved_by_delta += saved;
      family_.bytes_saved.inc(saved);
      entry.value = apply_delta(entry.value, message.delta);
      entry.version = message.version;
      break;
    }
    case PushMode::kNotifyOnly:
      ++stats_.notifications;
      family_.push_notify.inc();
      if (message.version > entry.notified_version) {
        entry.notified_version = message.version;
      }
      break;
  }
}

std::uint64_t ClientCache::notified_version(const std::string& key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? 0 : it->second.notified_version;
}

}  // namespace coda::dist
