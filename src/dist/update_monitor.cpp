#include "src/dist/update_monitor.h"

#include "src/util/error.h"

namespace coda::dist {

CountThresholdPolicy::CountThresholdPolicy(std::size_t threshold)
    : threshold_(threshold) {
  require(threshold >= 1, "CountThresholdPolicy: threshold must be >= 1");
}

bool CountThresholdPolicy::should_recompute(const UpdateEvent& event) const {
  return event.updates_since_recompute >= threshold_;
}

std::string CountThresholdPolicy::name() const {
  return "count(threshold=" + std::to_string(threshold_) + ")";
}

SizeThresholdPolicy::SizeThresholdPolicy(std::size_t threshold_bytes)
    : threshold_bytes_(threshold_bytes) {
  require(threshold_bytes >= 1,
          "SizeThresholdPolicy: threshold must be >= 1 byte");
}

bool SizeThresholdPolicy::should_recompute(const UpdateEvent& event) const {
  return event.bytes_since_recompute >= threshold_bytes_;
}

std::string SizeThresholdPolicy::name() const {
  return "size(threshold=" + std::to_string(threshold_bytes_) + "B)";
}

AppSpecificPolicy::AppSpecificPolicy(std::string label, Predicate predicate)
    : label_(std::move(label)), predicate_(std::move(predicate)) {
  require(static_cast<bool>(predicate_),
          "AppSpecificPolicy: null predicate");
}

bool AppSpecificPolicy::should_recompute(const UpdateEvent& event) const {
  return predicate_(event);
}

std::string AppSpecificPolicy::name() const { return "app(" + label_ + ")"; }

UpdateMonitor::UpdateMonitor(std::unique_ptr<RecomputePolicy> policy,
                             RecomputeFn recompute)
    : policy_(std::move(policy)), recompute_(std::move(recompute)) {
  require(policy_ != nullptr, "UpdateMonitor: null policy");
  require(static_cast<bool>(recompute_), "UpdateMonitor: null callback");
}

bool UpdateMonitor::on_update(const std::string& key, const Bytes* old_value,
                              const Bytes& new_value, std::uint64_t version,
                              std::size_t update_bytes) {
  KeyState& state = keys_[key];
  if (version != 0 && version <= state.last_version) {
    ++replays_dropped_;
    return false;
  }
  if (version > state.last_version) state.last_version = version;
  ++state.updates;
  state.bytes += update_bytes;
  ++total_updates_;

  UpdateEvent event;
  event.key = key;
  event.version = version;
  event.update_bytes = update_bytes;
  event.updates_since_recompute = state.updates;
  event.bytes_since_recompute = state.bytes;
  event.old_value = old_value;
  event.new_value = &new_value;

  if (!policy_->should_recompute(event)) return false;
  recompute_(key);
  ++total_recomputes_;
  // Reset the accumulation counters but keep the version high-water mark:
  // a recompute must not re-open the replay window.
  state.updates = 0;
  state.bytes = 0;
  return true;
}

std::size_t UpdateMonitor::pending_updates(const std::string& key) const {
  auto it = keys_.find(key);
  return it == keys_.end() ? 0 : it->second.updates;
}

std::size_t UpdateMonitor::pending_bytes(const std::string& key) const {
  auto it = keys_.find(key);
  return it == keys_.end() ? 0 : it->second.bytes;
}

}  // namespace coda::dist
