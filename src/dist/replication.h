// Geographic replication (Section III: "The data may be replicated across
// multiple geographic areas for high availability and disaster recovery in
// case one site fails").
//
// A ReplicatedStore fronts one primary HomeDataStore plus N replicas on
// distinct nodes. put() writes the primary and synchronizes replicas by
// delta (cheap) or full value; clients fetch through the replica set,
// which routes to the nearest healthy site and fails over when a site is
// marked down.
#pragma once

#include <memory>
#include <vector>

#include "src/dist/home_store.h"

namespace coda::dist {

/// Ships one `bytes`-sized sync message from `primary` to `replica` under
/// `retry`. Returns false — counting the pinned `replication.failed_syncs`
/// family (attributed to the primary's node shard) and a flight-recorder
/// event — when the replica is inside a crash window or unreachable past
/// the retry budget; the replica then keeps its old state and catches up
/// on a later sync. Shared by ReplicatedStore::put and the DARR shard
/// replication (darr::ShardedDarrService).
bool sync_replica(SimNet& net, NodeId primary, NodeId replica,
                  std::size_t bytes, const RetryPolicy& retry,
                  const std::string& op, const std::string& key);

/// A primary-plus-replicas group of home data stores.
class ReplicatedStore {
 public:
  struct Config {
    HomeDataStore::Config store;
    bool delta_sync = true;  ///< synchronize replicas by delta when smaller
  };

  struct SyncStats {
    std::size_t full_syncs = 0;
    std::size_t delta_syncs = 0;
    /// Replica syncs abandoned after the retry budget (the replica keeps
    /// its old version and catches up on the next put() or resync()).
    std::size_t failed_syncs = 0;
    std::size_t bytes_shipped = 0;
  };

  /// Creates the group: `nodes[0]` is the primary, the rest replicas.
  ReplicatedStore(SimNet* net, std::vector<NodeId> nodes);
  ReplicatedStore(SimNet* net, std::vector<NodeId> nodes, Config config);

  std::size_t n_sites() const { return stores_.size(); }
  HomeDataStore& site(std::size_t i);

  /// Writes through the primary and synchronizes every healthy replica.
  void put(const std::string& key, Bytes value);

  /// Marks a site failed (disaster); it stops serving and syncing.
  void fail_site(std::size_t i);

  /// Brings a failed site back; it catches up on the next put() or can be
  /// caught up immediately with resync().
  void recover_site(std::size_t i);

  /// Ships current values of every key to a (recovered) site.
  void resync(std::size_t i);

  bool is_healthy(std::size_t i) const;

  /// Serves a fetch from the first healthy site (primary preferred). Throws
  /// NotFound when every site is down.
  HomeDataStore::FetchResult fetch(const std::string& key, NodeId requester,
                                   std::uint64_t have_version);

  /// Index of the site fetch() would use now; throws NotFound if none.
  std::size_t serving_site() const;

  const SyncStats& sync_stats() const { return sync_stats_; }

 private:
  SimNet* net_;
  Config config_;
  std::vector<NodeId> nodes_;
  std::vector<std::unique_ptr<HomeDataStore>> stores_;
  std::vector<bool> healthy_;
  std::vector<std::string> keys_;  // every key ever written (for resync)
  SyncStats sync_stats_;
};

}  // namespace coda::dist
