// AI web service node (Fig 1): a remote model endpoint reached over the
// simulated network with HTTP-like request/response accounting — the
// architectural role of IBM Watson / Azure / AWS / Google Cloud AI in the
// paper, reproduced as the documented substitution (DESIGN.md §2).
#pragma once

#include <memory>
#include <mutex>

#include "src/core/component.h"
#include "src/dist/sim_net.h"
#include "src/obs/metrics.h"
#include "src/util/retry.h"

namespace coda::dist {

/// A fit/predict service wrapping any Estimator behind a network boundary.
/// Callers pay request+response bytes per invocation, like an HTTP ML API.
/// Thread-safe: concurrent evaluator threads may call fit/predict through
/// their RemoteEstimators — call accounting lives in atomic registry
/// counters (`remote.svc#<n>.*`) and the hosted model is serialized behind
/// a mutex. Transfers retry under the service's RetryPolicy and throw
/// NetworkError once the budget is spent (the evaluation engine then marks
/// that candidate failed instead of hanging the search).
class RemoteModelService {
 public:
  /// Point-in-time snapshot of the service's registry-backed counters.
  struct CallStats {
    std::size_t fit_calls = 0;
    std::size_t predict_calls = 0;
    std::size_t bytes_in = 0;   // at the service
    std::size_t bytes_out = 0;  // back to clients
  };

  RemoteModelService(SimNet* net, NodeId self,
                     std::unique_ptr<Estimator> model,
                     RetryPolicy retry = {});

  NodeId node_id() const { return self_; }

  /// Trains the hosted model on the shipped dataset; the caller pays the
  /// serialized data size plus a small response ack.
  void fit(NodeId caller, const Matrix& X, const std::vector<double>& y);

  /// Scores shipped rows; the caller pays X in one direction and the
  /// predictions in the other.
  std::vector<double> predict(NodeId caller, const Matrix& X);

  CallStats stats() const;

  /// Wire size of a shipped matrix (doubles + shape framing).
  static std::size_t matrix_bytes(const Matrix& m) {
    return m.size() * sizeof(double) + 16;
  }

 private:
  /// Registry-backed instance counters; atomic, so concurrent callers need
  /// no stats lock (the old plain-struct counters raced under tsan).
  struct InstanceCounters {
    obs::Counter* fit_calls = nullptr;
    obs::Counter* predict_calls = nullptr;
    obs::Counter* bytes_in = nullptr;
    obs::Counter* bytes_out = nullptr;
  };

  SimNet* net_;
  NodeId self_;
  std::unique_ptr<Estimator> model_;
  /// Process-wide `remote.*` families paired with this service's node
  /// shard (fleet telemetry): one inc() hits both.
  struct FamilyCounters {
    obs::ScopedCounter fit_calls;
    obs::ScopedCounter predict_calls;
    obs::ScopedCounter bytes_in;
    obs::ScopedCounter bytes_out;
  };

  RetryPolicy retry_;
  std::mutex model_mutex_;  // one hosted model, many calling threads
  InstanceCounters stats_;
  FamilyCounters family_;
};

/// Estimator adapter that forwards fit/predict to a RemoteModelService —
/// lets a remote endpoint participate in a Transformer-Estimator Graph as
/// the terminal stage ("these Web services complement the machine learning
/// capabilities at the clients and cloud analytics servers").
class RemoteEstimator final : public Estimator {
 public:
  RemoteEstimator(RemoteModelService* service, NodeId caller)
      : Estimator("remote_" + std::to_string(service->node_id())),
        service_(service),
        caller_(caller) {}

  void fit(const Matrix& X, const std::vector<double>& y) override {
    service_->fit(caller_, X, y);
    fitted_ = true;
  }

  std::vector<double> predict(const Matrix& X) const override {
    require_state(fitted_, "RemoteEstimator: call fit() first");
    return service_->predict(caller_, X);
  }

  std::unique_ptr<Component> clone() const override {
    // Clones share the remote endpoint (it is the service that holds the
    // model); each clone must still fit before predicting.
    auto copy = std::make_unique<RemoteEstimator>(service_, caller_);
    return copy;
  }

 private:
  RemoteModelService* service_;
  NodeId caller_;
  bool fitted_ = false;
};

}  // namespace coda::dist
