// Client-side replica cache (Section III): pull with version negotiation
// (deltas applied locally), and push reception for the three lease modes.
// With notify-only pushes the client learns the new version and change size
// and decides if/when to fetch.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "src/dist/home_store.h"

namespace coda::dist {

/// A client node's local copy of remote objects.
class ClientCache {
 public:
  /// Traffic/behaviour counters.
  struct Stats {
    std::size_t pulls = 0;
    std::size_t full_responses = 0;
    std::size_t delta_responses = 0;
    std::size_t not_modified_responses = 0;
    std::size_t pushes_full = 0;
    std::size_t pushes_delta = 0;
    std::size_t notifications = 0;
    std::size_t delta_fallback_fetches = 0;  ///< delta base mismatch -> pull
    std::size_t stale_pushes = 0;  ///< push at or below the held version
    std::size_t bytes_received = 0;
    std::size_t bytes_saved_by_delta = 0;  ///< full size - delta size sums
  };

  ClientCache(SimNet* net, NodeId self, HomeDataStore* home);

  NodeId node_id() const { return self_; }

  /// Pull protocol: fetches the latest version (sending the held version
  /// number), applies a delta or stores the full value, returns the value.
  const Bytes& get(const std::string& key);

  /// Value currently cached (no network); throws NotFound when absent.
  const Bytes& cached(const std::string& key) const;

  bool has(const std::string& key) const {
    return entries_.count(key) != 0;
  }

  /// Version held locally (0 = none).
  std::uint64_t version(const std::string& key) const;

  /// How many versions behind the home store this client is for `key`.
  std::uint64_t staleness(const std::string& key) const;

  // Lease management (push paradigm).
  void subscribe(const std::string& key, double duration, PushMode mode);
  void renew(const std::string& key, double duration);
  void cancel(const std::string& key);

  /// Delivery point for pushed updates (wired to the store's push handler).
  void on_push(const PushMessage& message);

  /// Version the latest notification announced (notify-only mode); 0 when
  /// none seen. The client can compare against version() and decide to
  /// get() when it actually needs the data.
  std::uint64_t notified_version(const std::string& key) const;

  const Stats& stats() const { return stats_; }

 private:
  struct Entry {
    std::uint64_t version = 0;
    Bytes value;
    std::uint64_t notified_version = 0;
  };

  /// Process-wide `clientcache.*` families paired with this cache's node
  /// shard (fleet telemetry). Bound explicitly in the constructor because
  /// on_push() runs on the pushing thread, where the ambient scope (if
  /// any) would be the home store's node, not this client's.
  struct FamilyCounters {
    obs::ScopedCounter pulls;
    obs::ScopedCounter bytes_received;
    obs::ScopedCounter bytes_saved;
    obs::ScopedCounter push_full;
    obs::ScopedCounter push_delta;
    obs::ScopedCounter push_notify;
    obs::ScopedCounter push_stale;
    obs::ScopedHistogram delta_bytes;
  };

  SimNet* net_;
  NodeId self_;
  HomeDataStore* home_;
  FamilyCounters family_;
  std::map<std::string, Entry> entries_;
  Stats stats_;
};

}  // namespace coda::dist
