#include "src/dist/delta.h"

#include <algorithm>
#include <unordered_map>

#include "src/util/hash.h"

namespace coda::dist {
namespace {

// Polynomial rolling hash over a window of `block` bytes.
class RollingHash {
 public:
  static constexpr std::uint64_t kBase = 1099511628211ULL;

  explicit RollingHash(std::size_t window) : window_(window) {
    pow_out_ = 1;
    for (std::size_t i = 0; i + 1 < window; ++i) pow_out_ *= kBase;
  }

  static std::uint64_t hash_block(const std::uint8_t* data,
                                  std::size_t size) {
    std::uint64_t h = 0;
    for (std::size_t i = 0; i < size; ++i) h = h * kBase + data[i];
    return h;
  }

  std::uint64_t roll(std::uint64_t h, std::uint8_t out,
                     std::uint8_t in) const {
    return (h - out * pow_out_) * kBase + in;
  }

 private:
  std::size_t window_;
  std::uint64_t pow_out_ = 1;
};

}  // namespace

std::size_t Delta::encoded_size() const {
  // 3 x u64 header + per-op kind byte + fields.
  std::size_t size = 3 * sizeof(std::uint64_t) + sizeof(std::uint64_t);
  for (const auto& op : ops) {
    size += 1;
    if (op.kind == DeltaOp::Kind::kCopy) {
      size += 2 * sizeof(std::uint64_t);
    } else {
      size += sizeof(std::uint64_t) + op.literal.size();
    }
  }
  return size;
}

Bytes Delta::serialize() const {
  ByteWriter w;
  w.write_u64(base_version);
  w.write_u64(target_version);
  w.write_u64(target_size);
  w.write_u64(ops.size());
  for (const auto& op : ops) {
    w.write_u8(static_cast<std::uint8_t>(op.kind));
    if (op.kind == DeltaOp::Kind::kCopy) {
      w.write_u64(op.offset);
      w.write_u64(op.length);
    } else {
      w.write_bytes(op.literal);
    }
  }
  return w.take();
}

Delta Delta::deserialize(const Bytes& buffer) {
  ByteReader r(buffer);
  Delta d;
  d.base_version = r.read_u64();
  d.target_version = r.read_u64();
  d.target_size = r.read_u64();
  const std::uint64_t n_ops = r.read_u64();
  // Each op is at least one kind byte, so a count beyond the remaining
  // payload is corrupt — reject it before reserve() turns it into an
  // allocation bomb.
  if (n_ops > r.remaining()) throw DecodeError("Delta: op count exceeds payload");
  d.ops.reserve(static_cast<std::size_t>(n_ops));
  for (std::uint64_t i = 0; i < n_ops; ++i) {
    DeltaOp op;
    const std::uint8_t kind = r.read_u8();
    if (kind > 1) throw DecodeError("Delta: unknown op kind");
    op.kind = static_cast<DeltaOp::Kind>(kind);
    if (op.kind == DeltaOp::Kind::kCopy) {
      op.offset = r.read_u64();
      op.length = r.read_u64();
    } else {
      op.literal = r.read_bytes();
    }
    d.ops.push_back(std::move(op));
  }
  return d;
}

Delta compute_delta(const Bytes& base, const Bytes& target,
                    const DeltaConfig& config) {
  require(config.block_size >= 4, "compute_delta: block_size too small");
  const std::size_t block = config.block_size;
  Delta delta;
  delta.target_size = target.size();

  Bytes pending;  // literal run being accumulated
  auto flush_pending = [&]() {
    if (pending.empty()) return;
    DeltaOp op;
    op.kind = DeltaOp::Kind::kAdd;
    op.literal = std::move(pending);
    pending.clear();
    delta.ops.push_back(std::move(op));
  };

  if (base.size() < block || target.size() < block) {
    // Too small to block-match: one literal op.
    pending = target;
    flush_pending();
    return delta;
  }

  // Index base blocks at block-aligned offsets.
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> index;
  for (std::size_t off = 0; off + block <= base.size(); off += block) {
    index[RollingHash::hash_block(base.data() + off, block)].push_back(off);
  }

  const RollingHash roller(block);
  std::size_t pos = 0;
  std::uint64_t h = RollingHash::hash_block(target.data(), block);
  while (pos + block <= target.size()) {
    bool matched = false;
    auto it = index.find(h);
    if (it != index.end()) {
      for (const std::size_t base_off : it->second) {
        if (std::equal(target.begin() + static_cast<std::ptrdiff_t>(pos),
                       target.begin() + static_cast<std::ptrdiff_t>(pos + block),
                       base.begin() + static_cast<std::ptrdiff_t>(base_off))) {
          // Extend the match forward past the block boundary.
          std::size_t len = block;
          while (pos + len < target.size() && base_off + len < base.size() &&
                 target[pos + len] == base[base_off + len]) {
            ++len;
          }
          flush_pending();
          DeltaOp op;
          op.kind = DeltaOp::Kind::kCopy;
          op.offset = base_off;
          op.length = len;
          // Merge with a directly preceding adjacent copy.
          if (!delta.ops.empty()) {
            auto& prev = delta.ops.back();
            if (prev.kind == DeltaOp::Kind::kCopy &&
                prev.offset + prev.length == op.offset) {
              prev.length += op.length;
              matched = true;
            }
          }
          if (!matched) delta.ops.push_back(std::move(op));
          matched = true;
          pos += len;
          if (pos + block <= target.size()) {
            h = RollingHash::hash_block(target.data() + pos, block);
          }
          break;
        }
      }
    }
    if (!matched) {
      pending.push_back(target[pos]);
      if (pos + block < target.size()) {
        h = roller.roll(h, target[pos], target[pos + block]);
      }
      ++pos;
    }
  }
  // Tail shorter than one block.
  for (; pos < target.size(); ++pos) pending.push_back(target[pos]);
  flush_pending();
  return delta;
}

Bytes apply_delta(const Bytes& base, const Delta& delta) {
  Bytes out;
  // A corrupted target_size must not pre-allocate unbounded memory; the
  // size-mismatch check below still catches the lie after reconstruction.
  out.reserve(std::min(static_cast<std::size_t>(delta.target_size),
                       base.size() + (std::size_t{1} << 20)));
  for (const auto& op : delta.ops) {
    if (op.kind == DeltaOp::Kind::kCopy) {
      // op.offset + op.length can overflow for corrupted deltas; compare
      // without the addition.
      if (op.length > base.size() || op.offset > base.size() - op.length) {
        throw DecodeError("apply_delta: COPY past end of base");
      }
      out.insert(out.end(),
                 base.begin() + static_cast<std::ptrdiff_t>(op.offset),
                 base.begin() + static_cast<std::ptrdiff_t>(op.offset + op.length));
    } else {
      out.insert(out.end(), op.literal.begin(), op.literal.end());
    }
    if (out.size() > delta.target_size) {
      throw DecodeError("apply_delta: reconstruction exceeds target size");
    }
  }
  if (out.size() != delta.target_size) {
    throw DecodeError("apply_delta: reconstructed size mismatch");
  }
  return out;
}

}  // namespace coda::dist
