#include "src/dist/telemetry.h"

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/error.h"

namespace coda::dist {

TelemetryReporter::TelemetryReporter(SimNet* net, NodeId self,
                                     NodeId collector_node,
                                     obs::TelemetryCollector* sink,
                                     const obs::MetricsRegistry* source,
                                     std::string report_as,
                                     RetryPolicy policy)
    : net_(net),
      self_(self),
      collector_node_(collector_node),
      sink_(sink),
      source_(source),
      report_as_(std::move(report_as)),
      policy_(policy) {
  require(net_ != nullptr && sink_ != nullptr && source_ != nullptr,
          "TelemetryReporter: net, sink and source must be non-null");
  require(!report_as_.empty(),
          "TelemetryReporter: report_as must be non-empty");
  policy_.validate();
  // Pre-register the telemetry families so exports and the golden
  // metrics-keys contract see them even on runs where every flush is a
  // no-op.
  obs::counter("telemetry.reports.sent");
  obs::counter("telemetry.reports.failed");
  obs::counter("telemetry.bytes.sent");
}

bool TelemetryReporter::flush() {
  const obs::MetricsSnapshot current = obs::snapshot_registry(*source_);
  const obs::MetricsSnapshot delta = obs::snapshot_delta(acked_, current);
  if (delta.empty()) return true;

  const Bytes wire = delta.serialize();
  try {
    transfer_with_retry(*net_, self_, collector_node_, wire.size(), policy_,
                        "telemetry.report");
  } catch (const NetworkError&) {
    // Base stays put: the next flush re-ships these increments merged
    // with whatever accumulated since.
    ++failed_;
    static auto& failed_metric = obs::counter("telemetry.reports.failed");
    failed_metric.inc();
    return false;
  }

  // Delivered: the collector decodes the wire bytes (round-tripping the
  // serializer keeps the simulated path honest) and the base advances.
  sink_->ingest(report_as_, net_->now(), obs::MetricsSnapshot::deserialize(wire));
  acked_ = current;
  ++sent_;
  bytes_sent_ += wire.size();
  static auto& sent_metric = obs::counter("telemetry.reports.sent");
  static auto& bytes_metric = obs::counter("telemetry.bytes.sent");
  sent_metric.inc();
  bytes_metric.inc(wire.size());
  return true;
}

}  // namespace coda::dist
