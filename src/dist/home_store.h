// Home data store (Section III): the authoritative holder of each data
// object. Maintains the current version, recent old versions, and
// precomputed deltas d(o, k-i, k) between retained versions and the latest;
// serves pull requests with version negotiation (delta when the requester's
// version is retained and the delta is worthwhile, full value otherwise);
// and pushes updates to lease holders in one of three modes — full value,
// delta, or notify-only (version + change-size hint, letting the client
// decide if and when to fetch).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/dist/delta.h"
#include "src/dist/sim_net.h"
#include "src/obs/metrics.h"
#include "src/util/retry.h"

namespace coda::dist {

/// How updates are shipped to a subscriber (Section III push paradigm).
enum class PushMode : std::uint8_t {
  kFullValue = 0,
  kDelta = 1,
  kNotifyOnly = 2,
};

std::string push_mode_name(PushMode mode);

/// A pushed update as received by a client.
struct PushMessage {
  std::string key;
  std::uint64_t version = 0;
  PushMode mode = PushMode::kFullValue;
  Bytes full_value;       // kFullValue
  Delta delta;            // kDelta
  std::size_t change_size_hint = 0;  // kNotifyOnly: how big the change is
  std::size_t wire_bytes = 0;        // what this message cost on the wire
};

/// The home data store for a set of objects.
class HomeDataStore {
 public:
  struct Config {
    DeltaConfig delta;
    std::size_t max_history = 4;    ///< retained old versions per object
    double min_delta_ratio = 0.8;   ///< send delta only when its size is
                                    ///< below this fraction of the full value
    /// Transfer retry budget. Client-initiated ops (fetch / subscribe /
    /// renew / cancel) throw NetworkError when it is exhausted; a push that
    /// exhausts it is dropped (`homestore.push.lost`) without advancing the
    /// lease's last-pushed version, so the next push ships a delta from the
    /// base the subscriber actually has — or the subscriber pulls.
    RetryPolicy retry;
  };

  /// Result of a pull request.
  struct FetchResult {
    std::uint64_t version = 0;
    bool is_delta = false;
    Bytes full_value;  // when !is_delta
    Delta delta;       // when is_delta
    std::size_t request_bytes = 0;
    std::size_t response_bytes = 0;
  };

  using PushHandler =
      std::function<void(NodeId client, const PushMessage& message)>;

  HomeDataStore(SimNet* net, NodeId self);
  HomeDataStore(SimNet* net, NodeId self, Config config);

  NodeId node_id() const { return self_; }

  /// Stores a new version of `key` (version number increases by one);
  /// precomputes deltas from every retained old version to the new one and
  /// pushes to live lease holders.
  void put(const std::string& key, Bytes value);

  /// Current version of `key`; 0 when absent.
  std::uint64_t version(const std::string& key) const;

  /// Current value; throws NotFound when absent.
  const Bytes& value(const std::string& key) const;

  /// Pull protocol: the client states the version it already holds
  /// (0 = none). Returns a delta when the client's version is retained and
  /// the (precomputed) delta is sufficiently smaller than the full value.
  /// Network traffic for request and response is accounted on `net`.
  FetchResult fetch(const std::string& key, NodeId requester,
                    std::uint64_t have_version);

  /// Subscribes `client` to updates of `key` for `duration` simulated
  /// seconds (a lease). Renewing extends the expiry; cancelling removes it.
  void subscribe(const std::string& key, NodeId client, double duration,
                 PushMode mode);
  void renew(const std::string& key, NodeId client, double duration);
  void cancel(const std::string& key, NodeId client);

  /// True if `client` holds an unexpired lease on `key`.
  bool has_lease(const std::string& key, NodeId client) const;

  /// Live (unexpired) lease count for `key`.
  std::size_t active_leases(const std::string& key) const;

  /// Routes pushed messages to clients (wired up by the host environment).
  void set_push_handler(PushHandler handler) {
    push_handler_ = std::move(handler);
  }

  /// Deltas currently precomputed for `key` (base versions, ascending).
  std::vector<std::uint64_t> retained_delta_bases(
      const std::string& key) const;

 private:
  struct Lease {
    NodeId client;
    double expires_at;
    PushMode mode;
    std::uint64_t last_pushed_version = 0;
  };

  struct ObjectState {
    std::uint64_t version = 0;
    Bytes current;
    std::map<std::uint64_t, Bytes> recent;   // old version -> value
    std::map<std::uint64_t, Delta> deltas;   // base version -> d(base, k)
    std::vector<Lease> leases;
  };

  /// Process-wide `homestore.*` families paired with this store's node
  /// shard (fleet telemetry): one inc()/observe() hits both. Bound in the
  /// constructor from net->node_name(self); store methods run on caller
  /// threads, so the explicit binding (not the thread-ambient scope) keeps
  /// attribution on the home node.
  struct FamilyCounters {
    obs::ScopedCounter put;
    obs::ScopedCounter push_full;
    obs::ScopedCounter push_delta;
    obs::ScopedCounter push_notify;
    obs::ScopedCounter push_lost;
    obs::ScopedCounter fetch_not_modified;
    obs::ScopedCounter fetch_delta;
    obs::ScopedCounter fetch_full;
    obs::ScopedHistogram delta_bytes;
  };

  ObjectState& state_of(const std::string& key);
  const ObjectState& state_of(const std::string& key) const;
  void push_update(const std::string& key, ObjectState& state,
                   const Bytes& previous_value);
  static std::size_t request_size(const std::string& key) {
    return key.size() + 16;  // key + version + framing
  }

  SimNet* net_;
  NodeId self_;
  Config config_;
  FamilyCounters family_;
  std::map<std::string, ObjectState> objects_;
  PushHandler push_handler_;
};

}  // namespace coda::dist
