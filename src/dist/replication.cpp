#include "src/dist/replication.h"

#include <algorithm>

#include "src/dist/retry.h"
#include "src/obs/event_log.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace coda::dist {

bool sync_replica(SimNet& net, NodeId primary, NodeId replica,
                  std::size_t bytes, const RetryPolicy& retry,
                  const std::string& op, const std::string& key) {
  // A replica inside a crash window is skipped without burning the retry
  // budget (and the backoff clock): the sync is known-failed immediately.
  if (net.node_up(replica)) {
    try {
      transfer_with_retry(net, primary, replica, bytes, retry, op);
      return true;
    } catch (const NetworkError&) {
      // fall through to the failure accounting
    }
  }
  obs::ScopedCounter failed(
      &obs::counter("replication.failed_syncs"),
      &obs::MetricScope::for_node(net.node_name(primary))
           .counter("replication.failed_syncs"));
  failed.inc();
  obs::event(obs::Severity::kError, "replication.sync.failed",
             {{"key", key}, {"replica", net.node_name(replica)}});
  return false;
}

ReplicatedStore::ReplicatedStore(SimNet* net, std::vector<NodeId> nodes)
    : ReplicatedStore(net, std::move(nodes), Config()) {}

ReplicatedStore::ReplicatedStore(SimNet* net, std::vector<NodeId> nodes,
                                 Config config)
    : net_(net), config_(config), nodes_(std::move(nodes)) {
  require(net != nullptr, "ReplicatedStore: null network");
  require(nodes_.size() >= 2,
          "ReplicatedStore: need a primary and at least one replica");
  stores_.reserve(nodes_.size());
  for (const NodeId node : nodes_) {
    stores_.push_back(
        std::make_unique<HomeDataStore>(net, node, config_.store));
  }
  healthy_.assign(nodes_.size(), true);
}

HomeDataStore& ReplicatedStore::site(std::size_t i) {
  require(i < stores_.size(), "ReplicatedStore: site index out of range");
  return *stores_[i];
}

void ReplicatedStore::put(const std::string& key, Bytes value) {
  if (std::find(keys_.begin(), keys_.end(), key) == keys_.end()) {
    keys_.push_back(key);
  }
  // The primary applies the write locally; replicas receive it over the
  // network, as a delta against their current version when worthwhile.
  const Bytes previous = stores_[0]->version(key) > 0
                             ? stores_[0]->value(key)
                             : Bytes{};
  stores_[0]->put(key, value);
  obs::ScopedSpan span("replication.put");
  span.set_node(net_->node_name(nodes_[0]));
  span.tag("key", key);
  for (std::size_t i = 1; i < stores_.size(); ++i) {
    if (!healthy_[i]) continue;
    HomeDataStore& replica = *stores_[i];
    // Sync by delta against the replica's current version when worthwhile,
    // full value otherwise. A failed sync (sync_replica counts it in the
    // replication.failed_syncs family) leaves the replica on its old
    // version; it catches up on the next put() or an explicit resync().
    std::size_t sync_bytes = value.size();
    bool delta = false;
    if (config_.delta_sync && !previous.empty() &&
        replica.version(key) == stores_[0]->version(key) - 1) {
      const Delta d = compute_delta(previous, value, config_.store.delta);
      if (d.encoded_size() < value.size()) {
        sync_bytes = d.encoded_size();
        delta = true;
      }
    }
    if (!sync_replica(*net_, nodes_[0], nodes_[i], sync_bytes,
                      config_.store.retry, "replication.sync", key)) {
      ++sync_stats_.failed_syncs;
      continue;
    }
    sync_stats_.bytes_shipped += sync_bytes;
    ++(delta ? sync_stats_.delta_syncs : sync_stats_.full_syncs);
    replica.put(key, value);
  }
}

void ReplicatedStore::fail_site(std::size_t i) {
  require(i < healthy_.size(), "ReplicatedStore: site index out of range");
  healthy_[i] = false;
}

void ReplicatedStore::recover_site(std::size_t i) {
  require(i < healthy_.size(), "ReplicatedStore: site index out of range");
  healthy_[i] = true;
}

void ReplicatedStore::resync(std::size_t i) {
  require(i < stores_.size(), "ReplicatedStore: site index out of range");
  require(healthy_[i], "ReplicatedStore: resync of a failed site");
  const std::size_t source = serving_site();
  for (const auto& key : keys_) {
    if (stores_[source]->version(key) == 0) continue;
    const Bytes& value = stores_[source]->value(key);
    if (stores_[i]->version(key) == stores_[source]->version(key)) continue;
    transfer_with_retry(*net_, nodes_[source], nodes_[i], value.size(),
                        config_.store.retry, "replication.resync");
    sync_stats_.bytes_shipped += value.size();
    ++sync_stats_.full_syncs;
    // Bring the replica's version in line by replaying the value until the
    // version numbers match (versions are per-store counters).
    while (stores_[i]->version(key) < stores_[source]->version(key)) {
      stores_[i]->put(key, value);
    }
  }
}

bool ReplicatedStore::is_healthy(std::size_t i) const {
  require(i < healthy_.size(), "ReplicatedStore: site index out of range");
  return healthy_[i];
}

std::size_t ReplicatedStore::serving_site() const {
  for (std::size_t i = 0; i < healthy_.size(); ++i) {
    if (healthy_[i]) return i;
  }
  throw NotFound("ReplicatedStore: every site is down");
}

HomeDataStore::FetchResult ReplicatedStore::fetch(
    const std::string& key, NodeId requester, std::uint64_t have_version) {
  return stores_[serving_site()]->fetch(key, requester, have_version);
}

}  // namespace coda::dist
