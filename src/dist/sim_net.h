// Simulated network (substitution for the paper's geographically
// distributed deployment, DESIGN.md §2): named nodes, per-transfer byte and
// message accounting, a configurable latency/bandwidth cost model, and a
// logical clock that benches/tests advance explicitly. Everything the
// Section III protocols claim (bytes saved by deltas, staleness under
// pull vs push) is observable from these counters deterministically.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/util/error.h"

namespace coda::dist {

using NodeId = std::size_t;

/// Traffic counters for one directed node pair (and, via total(), for a
/// whole fabric — the aggregate is backed by obs::MetricsRegistry counters
/// named `simnet.net#<n>.*`; this struct is a point-in-time view).
struct LinkStats {
  std::size_t messages = 0;
  std::size_t bytes = 0;
  double simulated_seconds = 0.0;  ///< sum of per-message latency + tx time
};

/// The simulated network fabric.
class SimNet {
 public:
  struct Config {
    double latency_seconds = 0.020;      ///< per message (WAN-ish RTT/2)
    double bandwidth_bytes_per_sec = 1e6;  ///< 1 MB/s WAN link
  };

  SimNet() : SimNet(Config{}) {}
  explicit SimNet(Config config);

  /// Registers a node; names must be unique.
  NodeId add_node(const std::string& name);

  std::size_t n_nodes() const { return node_names_.size(); }
  const std::string& node_name(NodeId id) const;

  /// Accounts one message of `bytes` from -> to; returns its simulated
  /// transfer time (latency + bytes/bandwidth). Does NOT advance the clock
  /// (concurrent transfers are allowed to overlap).
  double transfer(NodeId from, NodeId to, std::size_t bytes);

  /// The logical clock, in simulated seconds.
  double now() const;

  /// Advances the logical clock (lease expiry is driven by this).
  void advance(double seconds);

  /// Counters for one directed pair (copied; safe across threads).
  LinkStats link(NodeId from, NodeId to) const;

  /// Aggregate counters over all links.
  LinkStats total() const;

  /// Resets counters (not the clock).
  void reset_stats();

 private:
  void check_node(NodeId id) const {
    require(id < node_names_.size(), "SimNet: unknown node id");
  }

  Config config_;
  mutable std::mutex mutex_;  // transfer() is called from evaluator threads
  double clock_ = 0.0;
  std::vector<std::string> node_names_;
  std::map<std::pair<NodeId, NodeId>, LinkStats> links_;
  // Registry-backed fabric totals (`simnet.net#<n>.*`); per-link detail
  // stays in links_.
  obs::Counter* total_messages_ = nullptr;
  obs::Counter* total_bytes_ = nullptr;
  obs::Gauge* total_seconds_ = nullptr;
};

}  // namespace coda::dist
