// Simulated network (substitution for the paper's geographically
// distributed deployment, DESIGN.md §2): named nodes, per-transfer byte and
// message accounting, a configurable latency/bandwidth cost model, and a
// logical clock that benches/tests advance explicitly. Everything the
// Section III protocols claim (bytes saved by deltas, staleness under
// pull vs push) is observable from these counters deterministically.
//
// Fault model (DESIGN.md §9): per-link message drops, latency spikes and
// bandwidth collapses are drawn deterministically from a seed and the
// link's own message counter, so each link's fault sequence is
// bit-reproducible regardless of thread interleaving elsewhere in the
// fabric. Directed partitions and node crashes are windows on the logical
// clock. transfer() never throws on a fault — it reports the failure in
// its TransferResult and the caller (usually via transfer_with_retry)
// decides whether to back off, degrade, or give up.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/error.h"

namespace coda::dist {

using NodeId = std::size_t;

/// Causal metadata travelling with a transfer — the wire-format stand-in
/// for a real RPC header. When `trace` is valid the fabric records a
/// logical-clock span ("net.<op>", attributed to the receiving node)
/// parented under it, and anchors the trace's steady/logical alignment.
struct MessageHeader {
  obs::TraceContext trace;
  std::string op;  ///< short verb, e.g. "darr.lookup" ("" = "transfer")
};

/// Traffic counters for one directed node pair (and, via total(), for a
/// whole fabric — the aggregate is backed by obs::MetricsRegistry counters
/// named `simnet.net#<n>.*`; this struct is a point-in-time view).
struct LinkStats {
  std::size_t messages = 0;
  std::size_t bytes = 0;
  double simulated_seconds = 0.0;  ///< sum of per-message latency + tx time
};

/// Outcome of one transfer() call. `seconds` is the simulated time the
/// attempt cost: full latency + tx time on success, the one-way latency on
/// a drop (the message travelled and was lost), and 0 for partitions and
/// crashed nodes (nothing was ever sent).
struct TransferResult {
  enum class Failure : std::uint8_t {
    kNone = 0,
    kDropped,      ///< stochastic per-link loss
    kPartitioned,  ///< directed partition window covers now()
    kNodeDown,     ///< either endpoint is inside a crash window
  };

  Failure failure = Failure::kNone;
  double seconds = 0.0;

  bool ok() const { return failure == Failure::kNone; }
};

std::string failure_name(TransferResult::Failure failure);

/// The simulated network fabric.
class SimNet {
 public:
  struct Config {
    double latency_seconds = 0.020;      ///< per message (WAN-ish RTT/2)
    double bandwidth_bytes_per_sec = 1e6;  ///< 1 MB/s WAN link
  };

  /// Stochastic fault knobs, all off by default. Draws for message i on a
  /// link are pure functions of (seed, from, to, i): the schedule each
  /// link sees is fixed by the seed alone.
  struct FaultConfig {
    std::uint64_t seed = 42;
    double drop_probability = 0.0;             ///< per message, per link
    double latency_spike_probability = 0.0;    ///< per delivered message
    double latency_spike_seconds = 0.25;       ///< added on a spike
    double bandwidth_collapse_probability = 0.0;  ///< per delivered message
    double bandwidth_collapse_factor = 0.05;   ///< fraction of nominal bw
  };

  SimNet() : SimNet(Config{}) {}
  explicit SimNet(Config config);

  /// Registers a node; names must be unique.
  NodeId add_node(const std::string& name);

  std::size_t n_nodes() const { return node_names_.size(); }
  const std::string& node_name(NodeId id) const;

  /// Accounts one message of `bytes` from -> to. Does NOT advance the
  /// clock (concurrent transfers are allowed to overlap). With faults
  /// enabled the attempt can fail — check TransferResult::ok().
  /// Fault injections are logged to the flight recorder; a valid
  /// `header.trace` additionally records a causal network span.
  TransferResult transfer(NodeId from, NodeId to, std::size_t bytes,
                          const MessageHeader& header = {});

  /// Enables (or replaces) the stochastic fault model.
  void set_faults(FaultConfig faults);

  /// Per-link drop probability override (wins over FaultConfig's default).
  void set_link_drop_probability(NodeId from, NodeId to, double probability);

  /// Blocks from -> to transfers while the logical clock lies in
  /// [from_time, until_time). Pass an infinite until_time for an
  /// open-ended partition; heal_partitions() lifts every window.
  void partition(NodeId from, NodeId to, double from_time, double until_time);
  void heal_partitions();

  /// Fails every transfer touching `id` while the clock lies in
  /// [from_time, until_time); restart_node() clears the node's windows.
  void crash_node(NodeId id, double from_time, double until_time);
  void restart_node(NodeId id);

  /// True when no crash window covers `id` at the current clock.
  bool node_up(NodeId id) const;

  /// The logical clock, in simulated seconds.
  double now() const;

  /// Advances the logical clock (lease expiry and fault windows are driven
  /// by this; retry backoff waits are charged here too).
  void advance(double seconds);

  /// Counters for one directed pair (copied; safe across threads).
  LinkStats link(NodeId from, NodeId to) const;

  /// Aggregate counters over all links.
  LinkStats total() const;

  /// Fault counters since construction / reset_stats().
  struct FaultStats {
    std::size_t dropped = 0;
    std::size_t partitioned = 0;
    std::size_t node_down = 0;
    std::size_t latency_spikes = 0;
  };
  FaultStats fault_stats() const;

  /// Resets counters (not the clock, not the fault configuration).
  void reset_stats();

 private:
  struct Window {
    NodeId from = 0;  // partition: source; crash: the node (to unused)
    NodeId to = 0;
    double start = 0.0;
    double end = 0.0;
  };

  void check_node(NodeId id) const {
    require(id < node_names_.size(), "SimNet: unknown node id");
  }
  bool partitioned_locked(NodeId from, NodeId to) const;
  bool crashed_locked(NodeId id) const;
  /// Uniform [0,1) draw for fault stream `salt` of message `index` on the
  /// directed link from -> to. Pure function of the fault seed.
  double fault_draw_locked(std::uint64_t salt, NodeId from, NodeId to,
                           std::size_t index) const;

  Config config_;
  mutable std::mutex mutex_;  // transfer() is called from evaluator threads
  double clock_ = 0.0;
  std::vector<std::string> node_names_;
  std::map<std::pair<NodeId, NodeId>, LinkStats> links_;
  bool faults_enabled_ = false;
  FaultConfig faults_;
  std::map<std::pair<NodeId, NodeId>, double> link_drop_override_;
  std::map<std::pair<NodeId, NodeId>, std::size_t> link_attempts_;
  std::vector<Window> partitions_;
  std::vector<Window> crashes_;
  FaultStats fault_stats_;
  // Registry-backed fabric totals (`simnet.net#<n>.*`); per-link detail
  // stays in links_.
  obs::Counter* total_messages_ = nullptr;
  obs::Counter* total_bytes_ = nullptr;
  obs::Gauge* total_seconds_ = nullptr;
};

}  // namespace coda::dist
