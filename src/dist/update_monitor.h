// Change-triggered recomputation (Section III): "When the amount of change
// in the data exceeds a threshold, then analytics calculations are
// recalculated". Three trigger policies, verbatim from the paper:
//   1. number of updates since the last recalculation exceeds a threshold;
//   2. total size of updates since the last recalculation exceeds one;
//   3. an application-specific predicate over the update stream (the best,
//      but hardest, option).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "src/util/serialization.h"

namespace coda::dist {

/// What a policy sees for each incoming update.
struct UpdateEvent {
  std::string key;
  std::uint64_t version = 0;
  std::size_t update_bytes = 0;            ///< size of this update (delta)
  std::size_t updates_since_recompute = 0;  ///< including this one
  std::size_t bytes_since_recompute = 0;    ///< including this one
  const Bytes* old_value = nullptr;         ///< may be null (first version)
  const Bytes* new_value = nullptr;
};

/// Decides when accumulated change warrants recomputation.
class RecomputePolicy {
 public:
  virtual ~RecomputePolicy() = default;
  virtual bool should_recompute(const UpdateEvent& event) const = 0;
  virtual std::string name() const = 0;
  virtual std::unique_ptr<RecomputePolicy> clone() const = 0;
};

/// Fires every `threshold` updates.
class CountThresholdPolicy final : public RecomputePolicy {
 public:
  explicit CountThresholdPolicy(std::size_t threshold);
  bool should_recompute(const UpdateEvent& event) const override;
  std::string name() const override;
  std::unique_ptr<RecomputePolicy> clone() const override {
    return std::make_unique<CountThresholdPolicy>(*this);
  }

 private:
  std::size_t threshold_;
};

/// Fires when accumulated update bytes exceed `threshold_bytes`.
class SizeThresholdPolicy final : public RecomputePolicy {
 public:
  explicit SizeThresholdPolicy(std::size_t threshold_bytes);
  bool should_recompute(const UpdateEvent& event) const override;
  std::string name() const override;
  std::unique_ptr<RecomputePolicy> clone() const override {
    return std::make_unique<SizeThresholdPolicy>(*this);
  }

 private:
  std::size_t threshold_bytes_;
};

/// Application-specific trigger: an arbitrary predicate over the event
/// (e.g. data drift measured on decoded values).
class AppSpecificPolicy final : public RecomputePolicy {
 public:
  using Predicate = std::function<bool(const UpdateEvent&)>;
  AppSpecificPolicy(std::string label, Predicate predicate);
  bool should_recompute(const UpdateEvent& event) const override;
  std::string name() const override;
  std::unique_ptr<RecomputePolicy> clone() const override {
    return std::make_unique<AppSpecificPolicy>(*this);
  }

 private:
  std::string label_;
  Predicate predicate_;
};

/// Tracks updates per key and invokes a recompute callback when the policy
/// fires, resetting that key's accumulation counters.
class UpdateMonitor {
 public:
  using RecomputeFn = std::function<void(const std::string& key)>;

  UpdateMonitor(std::unique_ptr<RecomputePolicy> policy,
                RecomputeFn recompute);

  /// Feeds one update; returns true when recomputation was triggered.
  /// Replays are dropped: an update whose version is at or below the last
  /// one seen for `key` (a push retransmitted after its lease expired, or
  /// racing a pull that already advanced the replica) must not inflate the
  /// accumulation counters and trigger a spurious recompute.
  bool on_update(const std::string& key, const Bytes* old_value,
                 const Bytes& new_value, std::uint64_t version,
                 std::size_t update_bytes);

  /// Updates dropped by the version-replay guard.
  std::size_t replays_dropped() const { return replays_dropped_; }

  /// Updates accumulated since the last recompute of `key` (its current
  /// staleness in update counts).
  std::size_t pending_updates(const std::string& key) const;
  std::size_t pending_bytes(const std::string& key) const;

  std::size_t total_updates() const { return total_updates_; }
  std::size_t total_recomputes() const { return total_recomputes_; }
  const RecomputePolicy& policy() const { return *policy_; }

 private:
  struct KeyState {
    std::size_t updates = 0;
    std::size_t bytes = 0;
    std::uint64_t last_version = 0;
  };

  std::unique_ptr<RecomputePolicy> policy_;
  RecomputeFn recompute_;
  std::map<std::string, KeyState> keys_;
  std::size_t total_updates_ = 0;
  std::size_t total_recomputes_ = 0;
  std::size_t replays_dropped_ = 0;
};

}  // namespace coda::dist
