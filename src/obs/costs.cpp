#include "src/obs/costs.h"

#include "src/obs/metrics.h"

namespace coda::obs {
namespace {
thread_local std::string t_current_candidate;
}  // namespace

CandidateCosts& CandidateCosts::instance() {
  static CandidateCosts costs;
  return costs;
}

void CandidateCosts::record_fold(const std::string& path, double seconds) {
  static auto& folds_metric = counter("eval.candidate.folds");
  folds_metric.inc();
  std::lock_guard<std::mutex> lock(mutex_);
  CandidateCost& row = table_[path];
  ++row.folds;
  row.fold_seconds += seconds;
}

void CandidateCosts::record_cached(const std::string& path) {
  static auto& cached_metric = counter("eval.candidate.cached");
  cached_metric.inc();
  std::lock_guard<std::mutex> lock(mutex_);
  ++table_[path].cached;
}

void CandidateCosts::record_prefix(const std::string& path, bool hit) {
  std::lock_guard<std::mutex> lock(mutex_);
  CandidateCost& row = table_[path];
  if (hit) {
    ++row.prefix_hits;
  } else {
    ++row.prefix_misses;
  }
}

void CandidateCosts::record_phase(const std::string& path, Phase phase,
                                  double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  CandidateCost& row = table_[path];
  switch (phase) {
    case Phase::kPrepare:
      row.prepare_seconds += seconds;
      break;
    case Phase::kFit:
      row.fit_seconds += seconds;
      break;
    case Phase::kScore:
      row.score_seconds += seconds;
      break;
  }
}

void CandidateCosts::record_claim_wait(const std::string& path,
                                       double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  table_[path].claim_wait_seconds += seconds;
}

void CandidateCosts::record_pruned(const std::string& path, int rung) {
  std::lock_guard<std::mutex> lock(mutex_);
  table_[path].pruned_at_rung = rung;
}

std::map<std::string, CandidateCost> CandidateCosts::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return table_;
}

void CandidateCosts::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  table_.clear();
}

CandidateScope::CandidateScope(std::string path)
    : prev_(std::move(t_current_candidate)) {
  t_current_candidate = std::move(path);
}

CandidateScope::~CandidateScope() {
  t_current_candidate = std::move(prev_);
}

const std::string& current_candidate() { return t_current_candidate; }

void prefix_event(bool hit) {
  if (t_current_candidate.empty()) return;
  CandidateCosts::instance().record_prefix(t_current_candidate, hit);
}

void phase_event(Phase phase, double seconds) {
  if (t_current_candidate.empty()) return;
  CandidateCosts::instance().record_phase(t_current_candidate, phase, seconds);
}

}  // namespace coda::obs
