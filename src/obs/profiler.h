// Always-on region profiler (observability layer, DESIGN.md §15): a
// PROF_SCOPE("name") RAII region maintains a per-thread call-path stack
// and accumulates call counts and total nanoseconds into a per-thread
// arena — no locks on the hot path (two steady-clock reads plus a few
// relaxed atomic operations per scope). Arenas are merged at export time
// into
//   * folded-stack ("collapsed") text consumable by flamegraph.pl /
//     speedscope — the `--profile-folded` bench flag and the
//     CODA_PROFILE_DUMP environment variable both emit it;
//   * a flat per-region table (the `coda_top` view) with self time,
//     derived kernel GF/s, and deterministic (calls desc, name) ranking;
//   * `prof.<region>.calls` / `prof.<region>.self_ns` counters published
//     into a node's MetricScope shard AND the process-wide registry
//     (publish_node()), so profile summaries ride TelemetryReporter
//     snapshots and the TelemetryCollector can render a fleet-wide
//     hot-path table.
//
// Node attribution: a top-level scope keys its call tree by the thread's
// ambient obs::Tracer::current_node() (maintained by NodeScope /
// ContextScope), so one process running many simulated clients keeps one
// profile per client. Nested scopes inherit the root's node.
//
// Determinism rules (DESIGN.md §15): regions wrap whole phases
// (lookup-plus-maybe-compute), never cache-miss-gated branches, so the
// region set and call counts of a seeded run are reproducible while the
// recorded times vary. Exports iterate sorted and rank by (calls desc,
// name asc) — never by time.
//
// Thread safety: a PathNode's calls/total_ns are written only by the
// owning thread (relaxed load+store, no RMW); exporters read them
// relaxed. Tree edges are published via an atomic sibling list
// (store-release by the owner, load-acquire by readers). reset() is only
// safe while no scopes are live — the same contract as Tracer::clear().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace coda::obs::prof {

/// Interned region identifier; stable for the process lifetime.
using RegionId = std::uint32_t;

/// Interns `name` (idempotent) and returns its id. Called once per
/// PROF_SCOPE call site via a function-local static.
RegionId intern(const std::string& name);

/// The name behind an interned id (throws InvalidArgument on unknown id).
const std::string& region_name(RegionId id);

/// RAII region: pushes the region onto the calling thread's call path on
/// construction, accumulates elapsed time and one call on destruction.
/// Use the PROF_SCOPE macro rather than constructing Scope directly.
class Scope {
 public:
  explicit Scope(RegionId region);
  ~Scope();

  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  void* node_ = nullptr;  // PathNode* of this scope
  void* prev_ = nullptr;  // PathNode* of the enclosing scope (may be null)
  std::uint64_t start_ns_ = 0;
};

/// One merged root→leaf call path, aggregated over every thread arena.
struct PathStat {
  std::string node;               ///< "" = the ambient process
  std::vector<std::string> path;  ///< region names, root first
  std::uint64_t calls = 0;
  std::uint64_t total_ns = 0;  ///< wall time inside the leaf region
  std::uint64_t self_ns = 0;   ///< total minus time in child regions
};

/// One merged flat region row (summed over paths, threads, and nodes).
/// total_ns assumes non-recursive regions: a region nested under itself
/// would double-count total (self_ns stays exact either way).
struct RegionStat {
  std::string name;
  std::uint64_t calls = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t self_ns = 0;
};

/// Every call path with calls > 0, merged across threads, sorted by
/// (node, path) — byte-deterministic ordering for seeded runs.
std::vector<PathStat> merged_paths();

/// Flat per-region rollup of merged_paths(), ranked by (calls desc, name
/// asc) — the deterministic hot-path ordering (DESIGN.md §15).
std::vector<RegionStat> region_table();

/// Folded-stack ("collapsed") text: one line per call path,
/// "node;root;child;leaf self_ns" (the node frame is omitted for the
/// ambient ""), sorted by stack. Zero-self paths are kept as long as they
/// were called, so the stack *set* of a seeded run is deterministic even
/// though the sample values are wall-clock times.
std::string folded();

/// Writes folded() to `path` (throws coda::Error on I/O error).
void write_folded(const std::string& path);

/// Human-readable `coda_top` view: the top `max_rows` regions by
/// (calls desc, name), with calls, self/total time, and — when the
/// kernel.gemm.{flops,seconds} metrics are non-empty — the derived
/// GEMM GF/s line.
std::string report(std::size_t max_rows = 24);

/// Publishes `node`'s profile as counter increments since the last
/// publish: prof.<region>.calls and prof.<region>.self_ns land in the
/// node's MetricScope shard AND the process-wide registry (equal
/// increments, preserving the global-equals-sum-of-shards telemetry
/// invariant). Call at deterministic flush points (run_cooperative_fleet
/// does, just before each TelemetryReporter flush). No-op for "".
void publish_node(const std::string& node);

/// publish_node() for every node that has profiled work.
void publish_all();

/// True when no region has any recorded calls (e.g. right after reset()).
bool empty();

/// Zeroes every accumulator and the publish baselines; the interned
/// regions and arena structure survive (references stay valid). Only safe
/// while no Scope is live on another thread. obs::reset_all() calls this.
void reset();

}  // namespace coda::obs::prof

// Function-local static interning + RAII scope. Usage:
//   void hot_path() {
//     PROF_SCOPE("eval.fold");
//     ...
//   }
#define CODA_PROF_CONCAT2(a, b) a##b
#define CODA_PROF_CONCAT(a, b) CODA_PROF_CONCAT2(a, b)
#define PROF_SCOPE(name)                                              \
  static const ::coda::obs::prof::RegionId CODA_PROF_CONCAT(          \
      coda_prof_region_, __LINE__) = ::coda::obs::prof::intern(name); \
  const ::coda::obs::prof::Scope CODA_PROF_CONCAT(coda_prof_scope_,   \
                                                  __LINE__)(          \
      CODA_PROF_CONCAT(coda_prof_region_, __LINE__))
