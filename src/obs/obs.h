// Umbrella header for the observability subsystem: the metrics registry,
// the span tracer, the flight recorder, per-candidate cost attribution,
// the region profiler, and the exporters. See README.md for the
// metric-name table, DESIGN.md §10 for context propagation and the
// dual-clock model, and DESIGN.md §15 for the profiler.
#pragma once

#include <string>

#include "src/obs/collector.h"
#include "src/obs/costs.h"
#include "src/obs/event_log.h"
#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/obs/slo.h"
#include "src/obs/timeseries.h"
#include "src/obs/trace.h"

namespace coda::obs {

/// Full JSON snapshot of the process-wide registry, tracer, and candidate
/// cost table: {"counters": {...}, "gauges": {...}, "histograms": {...},
/// "candidates": {...}, "spans": ...}. `max_spans` caps the span records
/// included (most recent kept).
std::string snapshot_json(std::size_t max_spans = 64);

/// Human-readable text dump of the same data (counters/gauges sorted by
/// name, histograms as count/sum/mean plus interpolated p50/p95/p99).
std::string dump();

/// The retained spans as Chrome trace-event ("Trace Event Format") JSON,
/// loadable in Perfetto / chrome://tracing: nodes map to pids, threads to
/// tids, spans to "X" complete events, registry counters to "C" counter
/// events. Logical-clock (SimNet) spans are shifted onto the steady
/// timeline via each trace's alignment anchor and shown on a per-node
/// "network" track; traces that never crossed the network keep their raw
/// logical timestamps (clock domains stay distinguishable via the
/// "clock" arg on every event).
std::string export_chrome_trace();

/// Writes export_chrome_trace() to `path` (throws CodaError on I/O error).
void write_chrome_trace(const std::string& path);

/// Honours the CODA_METRICS_DUMP environment variable: unset/"0" = no-op,
/// "1" = print snapshot_json() to stdout, anything else = write it to that
/// path. Also honours CODA_TRACE_DUMP with the same semantics for
/// export_chrome_trace(), and CODA_PROFILE_DUMP for the profiler's
/// folded-stack export (prof::folded()). Called at the end of
/// example/bench mains so instrumented runs can export without code
/// changes.
void dump_if_env();

/// The CODA_TRACE_DUMP half of dump_if_env(), separately callable.
void trace_dump_if_env();

/// Zeroes every metric (the process-wide registry AND every per-node
/// MetricScope shard), rewinds the per-family instance-id sources, clears
/// the tracer (spans, anchors, and span/trace id sources), the flight
/// recorder, the candidate cost table, the region profiler
/// (prof::reset()), and the global SLO registry — full test isolation
/// between seed-deterministic runs: two identical runs bracketed by
/// reset_all() produce identical metrics output.
void reset_all();

}  // namespace coda::obs
