// Umbrella header for the observability subsystem: the metrics registry,
// the span tracer, and the exporters. See README.md for the metric-name
// table and DESIGN.md for the layer description.
#pragma once

#include <string>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace coda::obs {

/// Full JSON snapshot of the process-wide registry and tracer:
/// {"counters": {...}, "gauges": {...}, "histograms": {...}, "spans": ...}.
/// `max_spans` caps the span records included (most recent kept).
std::string snapshot_json(std::size_t max_spans = 64);

/// Human-readable text dump of the same data (counters/gauges sorted by
/// name, histograms as count/sum/p50-ish bucket lines).
std::string dump();

/// Honours the CODA_METRICS_DUMP environment variable: unset/"0" = no-op,
/// "1" = print snapshot_json() to stdout, anything else = write it to that
/// path. Called at the end of example/bench mains so instrumented runs can
/// export without code changes.
void dump_if_env();

/// Zeroes every metric and clears the tracer (test isolation).
void reset_all();

}  // namespace coda::obs
