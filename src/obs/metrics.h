// Process-wide metrics registry (observability layer): named counters,
// gauges, and fixed-bucket histograms shared by every subsystem. The fast
// path is a relaxed std::atomic operation — call sites cache the reference
// once (`static auto& c = obs::counter("name");`) so the registry's mutex
// is only ever taken at first registration and at export time.
//
// Naming convention: dot-separated families, label as the last segment —
// e.g. `darr.lookup.hit` / `darr.lookup.miss`. Per-instance views (the thin
// accessors kept on DarrRepository / SimNet / DarrClient) use an instance
// segment: `darr.repo#3.stores`.
//
// Fleet telemetry (DESIGN.md §12): in addition to the process-wide
// registry, every simulated node can own a MetricScope — a registry shard
// keyed by node name. Instrumented call sites write both the shard and the
// global family (ScopedCounter / ScopedHistogram, or the ambient
// count_scoped()/observe_scoped() helpers driven by obs::NodeScope), so
// the global view stays the exact sum of the shards for families written
// exclusively through scoped handles.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace coda::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written (or accumulated) floating-point value.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bucket i counts observations v <= bound[i]
/// (and > bound[i-1]); one implicit +inf overflow bucket at the end.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.value(); }

  /// Finite bounds; bucket index bounds().size() is the +inf bucket.
  const std::vector<double>& bounds() const { return bounds_; }
  std::size_t n_buckets() const { return buckets_.size(); }
  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  void reset();

  /// Estimated q-quantile (0 <= q <= 1) by linear interpolation within the
  /// bucket that crosses rank q*count. Assumes non-negative observations
  /// (bucket 0 interpolates from 0); ranks landing in the +inf overflow
  /// bucket clamp to the largest finite bound.
  /// An EMPTY histogram (count() == 0) returns 0.0 by contract — never
  /// NaN, so threshold comparisons (SLO specs) stay well-defined before
  /// the first observation. Guarded explicitly and pinned by a test.
  /// A live snapshot under concurrent observes is approximate.
  double quantile(double q) const;

  /// Adds `other`'s buckets, count, and sum into this histogram (the
  /// per-node → fleet rollup). Throws InvalidArgument when the bucket
  /// bounds differ. The merge is per-bucket atomic, not transactional: a
  /// concurrent observe on either side lands wholly in one of them.
  void merge(const Histogram& other);

  /// `count` bounds starting at `start`, each `factor` times the previous.
  static std::vector<double> exponential_bounds(double start, double factor,
                                                std::size_t count);
  /// Default bounds for durations in seconds (1us .. ~67s, factor 4).
  static std::vector<double> default_time_bounds();
  /// Default bounds for sizes in bytes (64B .. 16MB, factor 4).
  static std::vector<double> default_byte_bounds();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  Gauge sum_;
};

/// The process-wide registry. Registration is idempotent: the first call
/// for a name creates the metric, later calls return the same object.
/// References stay valid for the process lifetime (reset() zeroes values,
/// it never removes registrations).
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` is used only by the call that creates the histogram; empty
  /// means Histogram::default_time_bounds().
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = {});

  /// Zeroes every value; registered references remain valid.
  void reset();

  // Export views (copied under the registry lock, sorted by name).
  std::vector<std::pair<std::string, std::uint64_t>> counter_values() const;
  std::vector<std::pair<std::string, double>> gauge_values() const;
  std::vector<std::pair<std::string, const Histogram*>> histogram_views()
      const;

  // Find-without-create lookups (the SLO evaluator probes names a spec
  // references; registering them as a side effect would pollute exports).
  std::optional<std::uint64_t> find_counter(const std::string& name) const;
  std::optional<double> find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// Convenience shorthands for the process-wide registry.
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
Histogram& histogram(const std::string& name,
                     std::vector<double> bounds = {});

/// A per-node shard of the metrics registry (fleet telemetry). Shards are
/// created on first use and, like the process-wide registry, live for the
/// process: references into a shard stay valid forever, and
/// reset_values() zeroes them without removing registrations. The shard
/// installed on the calling thread (via obs::NodeScope / ContextScope) is
/// what the ambient count_scoped()/observe_scoped() helpers write to.
class MetricScope {
 public:
  /// Finds or creates the shard for `node` (non-empty).
  static MetricScope& for_node(const std::string& node);
  /// The existing shard for `node`, or nullptr.
  static MetricScope* find(const std::string& node);
  /// Registered shard names, sorted.
  static std::vector<std::string> nodes();
  /// Zeroes every shard's values (registrations and references survive).
  static void reset_values();

  /// The shard ambient on the calling thread (nullptr = none installed).
  static MetricScope* current();
  /// Installs `scope` as the calling thread's ambient shard and returns
  /// the previous one. NodeScope/ContextScope use this; pass nullptr to
  /// clear.
  static MetricScope* install(MetricScope* scope);

  const std::string& node() const { return node_; }
  MetricsRegistry& registry() { return registry_; }
  const MetricsRegistry& registry() const { return registry_; }

  Counter& counter(const std::string& name) { return registry_.counter(name); }
  Gauge& gauge(const std::string& name) { return registry_.gauge(name); }
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = {}) {
    return registry_.histogram(name, std::move(bounds));
  }

  MetricScope(const MetricScope&) = delete;
  MetricScope& operator=(const MetricScope&) = delete;

 private:
  explicit MetricScope(std::string node) : node_(std::move(node)) {}

  std::string node_;
  MetricsRegistry registry_;
};

/// Counter handle pairing a node shard's counter with the process-wide
/// family (or per-instance) counter: inc() writes both, value() reads the
/// primary (process-wide) side. Default-constructed handles are inert.
class ScopedCounter {
 public:
  ScopedCounter() = default;
  ScopedCounter(Counter* primary, Counter* shard)
      : primary_(primary), shard_(shard) {}

  void inc(std::uint64_t n = 1) {
    if (primary_ != nullptr) primary_->inc(n);
    if (shard_ != nullptr) shard_->inc(n);
  }
  std::uint64_t value() const {
    return primary_ != nullptr ? primary_->value() : 0;
  }

 private:
  Counter* primary_ = nullptr;
  Counter* shard_ = nullptr;
};

/// Histogram handle mirroring ScopedCounter for observe().
class ScopedHistogram {
 public:
  ScopedHistogram() = default;
  ScopedHistogram(Histogram* primary, Histogram* shard)
      : primary_(primary), shard_(shard) {}

  void observe(double value) {
    if (primary_ != nullptr) primary_->observe(value);
    if (shard_ != nullptr) shard_->observe(value);
  }

 private:
  Histogram* primary_ = nullptr;
  Histogram* shard_ = nullptr;
};

/// Increments `name` in the process-wide registry and, when the calling
/// thread runs under an obs::NodeScope, in that node's shard too.
void count_scoped(const std::string& name, std::uint64_t n = 1);

/// observe()s `name` in the process-wide registry and the ambient node
/// shard (if any). `bounds` applies only when a side first registers the
/// histogram, exactly like obs::histogram().
void observe_scoped(const std::string& name, double value,
                    std::vector<double> bounds = {});

/// Process-wide source of per-instance metric ids: "darr.repo#<n>." style
/// prefixes mint one id per `family`. reset_instance_ids() (called by
/// obs::reset_all()) rewinds every family to 0 so seed-deterministic
/// back-to-back runs register identical instance names.
std::uint64_t next_instance_id(const std::string& family);
void reset_instance_ids();

/// Shared quantile estimator over an exported bucket vector (`buckets` has
/// one +inf overflow slot past `bounds`); the logic behind
/// Histogram::quantile(), reused by HistogramSnapshot.
double quantile_from_buckets(const std::vector<double>& bounds,
                             const std::vector<std::uint64_t>& buckets,
                             double q);

}  // namespace coda::obs
