// Process-wide metrics registry (observability layer): named counters,
// gauges, and fixed-bucket histograms shared by every subsystem. The fast
// path is a relaxed std::atomic operation — call sites cache the reference
// once (`static auto& c = obs::counter("name");`) so the registry's mutex
// is only ever taken at first registration and at export time.
//
// Naming convention: dot-separated families, label as the last segment —
// e.g. `darr.lookup.hit` / `darr.lookup.miss`. Per-instance views (the thin
// accessors kept on DarrRepository / SimNet / DarrClient) use an instance
// segment: `darr.repo#3.stores`.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace coda::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written (or accumulated) floating-point value.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bucket i counts observations v <= bound[i]
/// (and > bound[i-1]); one implicit +inf overflow bucket at the end.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.value(); }

  /// Finite bounds; bucket index bounds().size() is the +inf bucket.
  const std::vector<double>& bounds() const { return bounds_; }
  std::size_t n_buckets() const { return buckets_.size(); }
  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  void reset();

  /// Estimated q-quantile (0 <= q <= 1) by linear interpolation within the
  /// bucket that crosses rank q*count. Assumes non-negative observations
  /// (bucket 0 interpolates from 0); ranks landing in the +inf overflow
  /// bucket clamp to the largest finite bound. Returns 0 when empty.
  /// A live snapshot under concurrent observes is approximate.
  double quantile(double q) const;

  /// `count` bounds starting at `start`, each `factor` times the previous.
  static std::vector<double> exponential_bounds(double start, double factor,
                                                std::size_t count);
  /// Default bounds for durations in seconds (1us .. ~67s, factor 4).
  static std::vector<double> default_time_bounds();
  /// Default bounds for sizes in bytes (64B .. 16MB, factor 4).
  static std::vector<double> default_byte_bounds();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  Gauge sum_;
};

/// The process-wide registry. Registration is idempotent: the first call
/// for a name creates the metric, later calls return the same object.
/// References stay valid for the process lifetime (reset() zeroes values,
/// it never removes registrations).
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` is used only by the call that creates the histogram; empty
  /// means Histogram::default_time_bounds().
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = {});

  /// Zeroes every value; registered references remain valid.
  void reset();

  // Export views (copied under the registry lock, sorted by name).
  std::vector<std::pair<std::string, std::uint64_t>> counter_values() const;
  std::vector<std::pair<std::string, double>> gauge_values() const;
  std::vector<std::pair<std::string, const Histogram*>> histogram_views()
      const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// Convenience shorthands for the process-wide registry.
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
Histogram& histogram(const std::string& name,
                     std::vector<double> bounds = {});

}  // namespace coda::obs
