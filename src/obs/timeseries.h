// Fleet telemetry data model (DESIGN.md §12): fixed-capacity time-series
// rings sampled on the SimNet logical clock, and value snapshots of a
// metrics registry (or one node shard) that can be diffed, shipped over
// the simulated network as compact deltas, and re-merged into fleet
// aggregates by the TelemetryCollector.
//
// Delta semantics are chosen so a collector reconstructs the source shard
// exactly even when individual reports are lost and retransmitted:
// counters and histogram buckets travel as monotone integer increments
// (addition is exact), while gauges and histogram sums travel as absolute
// values (replace-on-apply — re-adding a float delta would drift).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/util/serialization.h"

namespace coda::obs {

/// Fixed-capacity ring of (time, value) samples, oldest overwritten
/// first. Unsynchronized — the TelemetryCollector guards its series with
/// its own lock.
class TimeSeries {
 public:
  struct Point {
    double t = 0.0;
    double value = 0.0;
  };

  explicit TimeSeries(std::size_t capacity = 256);

  /// Appends a sample. Timestamps are expected non-decreasing (the SimNet
  /// logical clock never rewinds); equal timestamps are allowed.
  void sample(double t, double value);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return ring_.size(); }
  bool empty() const { return ring_.empty(); }
  /// Samples ever recorded / overwritten by ring wrap-around.
  std::uint64_t total_samples() const { return total_; }
  std::uint64_t dropped() const { return total_ - ring_.size(); }

  /// Retained samples, oldest first.
  std::vector<Point> points() const;
  /// The newest sample (zeroes when empty).
  Point latest() const;

  /// Average per-second change between the oldest and newest retained
  /// samples — the rate of a counter series. 0 with fewer than two points
  /// or no elapsed time between them.
  double rate_per_second() const;

  void clear();

 private:
  std::size_t capacity_;
  std::vector<Point> ring_;
  std::size_t next_slot_ = 0;  // insertion point once the ring is full
  std::uint64_t total_ = 0;
};

/// Exported state of one histogram: bounds + buckets (one +inf overflow
/// slot past bounds), total count, and sum of observed values.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  double sum = 0.0;

  double quantile(double q) const {
    return quantile_from_buckets(bounds, buckets, q);
  }
};

/// Point-in-time values of a metrics registry. Doubles as the wire form
/// of a telemetry report: a delta between two snapshots is itself a
/// (sparse) MetricsSnapshot.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// Adds `other` into this snapshot: counters and histogram buckets sum,
  /// gauges sum (fleet aggregates treat gauges as additive), histogram
  /// sums add. Throws InvalidArgument on mismatched histogram bounds.
  void merge_from(const MetricsSnapshot& other);

  Bytes serialize() const;
  /// Throws DecodeError on a truncated or corrupt buffer.
  static MetricsSnapshot deserialize(const Bytes& buffer);
  /// Bytes this snapshot occupies on the (simulated) wire.
  std::size_t encoded_size() const { return serialize().size(); }
};

/// Captures every current value of `registry`.
MetricsSnapshot snapshot_registry(const MetricsRegistry& registry);

/// The sparse delta advancing `base` to `current`: counters/histograms
/// that moved carry integer increments; changed gauges and histogram sums
/// carry absolute values. A counter that went *backwards* (the registry
/// was reset between snapshots) is re-shipped at its absolute value, as
/// if freshly registered. Unchanged entries are omitted.
MetricsSnapshot snapshot_delta(const MetricsSnapshot& base,
                               const MetricsSnapshot& current);

/// Applies a delta produced by snapshot_delta() onto `base` in place:
/// counters/buckets add, gauges and histogram sums replace.
void apply_snapshot_delta(MetricsSnapshot& base,
                          const MetricsSnapshot& delta);

}  // namespace coda::obs
