#include "src/obs/slo.h"

#include <sstream>

#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/util/error.h"

namespace coda::obs {

namespace {

const char* stat_name(SloSpec::Stat stat) {
  switch (stat) {
    case SloSpec::Stat::kValue: return "value";
    case SloSpec::Stat::kCount: return "count";
    case SloSpec::Stat::kMean: return "mean";
    case SloSpec::Stat::kP50: return "p50";
    case SloSpec::Stat::kP95: return "p95";
    case SloSpec::Stat::kP99: return "p99";
    case SloSpec::Stat::kRate: return "rate";
  }
  return "?";
}

const char* cmp_name(SloSpec::Cmp cmp) {
  switch (cmp) {
    case SloSpec::Cmp::kLt: return "<";
    case SloSpec::Cmp::kLe: return "<=";
    case SloSpec::Cmp::kGt: return ">";
    case SloSpec::Cmp::kGe: return ">=";
  }
  return "?";
}

bool compare(double observed, SloSpec::Cmp cmp, double threshold) {
  switch (cmp) {
    case SloSpec::Cmp::kLt: return observed < threshold;
    case SloSpec::Cmp::kLe: return observed <= threshold;
    case SloSpec::Cmp::kGt: return observed > threshold;
    case SloSpec::Cmp::kGe: return observed >= threshold;
  }
  return false;
}

/// Histogram state a check can be computed from, whichever source it was
/// probed out of.
struct HistProbe {
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// The raw material for one metric: at most one of these is filled.
struct MetricProbe {
  std::optional<double> scalar;  // counter (as double) or gauge
  std::optional<HistProbe> hist;
};

MetricProbe probe_fleet(const MetricsSnapshot& fleet,
                        const std::string& metric) {
  MetricProbe out;
  if (const auto c = fleet.counters.find(metric); c != fleet.counters.end()) {
    out.scalar = static_cast<double>(c->second);
    return out;
  }
  if (const auto g = fleet.gauges.find(metric); g != fleet.gauges.end()) {
    out.scalar = g->second;
    return out;
  }
  if (const auto h = fleet.histograms.find(metric);
      h != fleet.histograms.end()) {
    out.hist = HistProbe{h->second.bounds, h->second.buckets, h->second.count,
                         h->second.sum};
  }
  return out;
}

MetricProbe probe_registry(const std::string& metric) {
  MetricProbe out;
  auto& registry = MetricsRegistry::instance();
  if (const auto c = registry.find_counter(metric); c.has_value()) {
    out.scalar = static_cast<double>(*c);
    return out;
  }
  if (const auto g = registry.find_gauge(metric); g.has_value()) {
    out.scalar = *g;
    return out;
  }
  if (const Histogram* h = registry.find_histogram(metric); h != nullptr) {
    HistProbe hp;
    hp.bounds = h->bounds();
    hp.buckets.reserve(h->n_buckets());
    for (std::size_t i = 0; i < h->n_buckets(); ++i) {
      hp.buckets.push_back(h->bucket_count(i));
    }
    hp.count = h->count();
    hp.sum = h->sum();
    out.hist = std::move(hp);
  }
  return out;
}

}  // namespace

SloSpec parse_slo(const std::string& text) {
  std::istringstream in(text);
  std::string metric, stat, cmp, threshold, extra;
  in >> metric >> stat >> cmp >> threshold;
  require(!threshold.empty() && !(in >> extra),
          "parse_slo: expected '<metric> <stat> <cmp> <threshold>', got '" +
              text + "'");

  SloSpec spec;
  spec.metric = metric;
  spec.text = text;

  if (stat == "value") {
    spec.stat = SloSpec::Stat::kValue;
  } else if (stat == "count") {
    spec.stat = SloSpec::Stat::kCount;
  } else if (stat == "mean") {
    spec.stat = SloSpec::Stat::kMean;
  } else if (stat == "p50") {
    spec.stat = SloSpec::Stat::kP50;
  } else if (stat == "p95") {
    spec.stat = SloSpec::Stat::kP95;
  } else if (stat == "p99") {
    spec.stat = SloSpec::Stat::kP99;
  } else if (stat == "rate") {
    spec.stat = SloSpec::Stat::kRate;
  } else {
    throw InvalidArgument("parse_slo: unknown stat '" + stat + "' in '" +
                          text + "'");
  }

  if (cmp == "<") {
    spec.cmp = SloSpec::Cmp::kLt;
  } else if (cmp == "<=") {
    spec.cmp = SloSpec::Cmp::kLe;
  } else if (cmp == ">") {
    spec.cmp = SloSpec::Cmp::kGt;
  } else if (cmp == ">=") {
    spec.cmp = SloSpec::Cmp::kGe;
  } else {
    throw InvalidArgument("parse_slo: unknown comparator '" + cmp + "' in '" +
                          text + "'");
  }

  try {
    std::size_t consumed = 0;
    spec.threshold = std::stod(threshold, &consumed);
    require(consumed == threshold.size(), "trailing characters");
  } catch (const std::exception&) {
    throw InvalidArgument("parse_slo: bad threshold '" + threshold + "' in '" +
                          text + "'");
  }
  return spec;
}

SloRegistry& SloRegistry::instance() {
  static SloRegistry registry;
  return registry;
}

SloRegistry& global_slos() { return SloRegistry::instance(); }

void SloRegistry::add(const SloSpec& spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  specs_.push_back(spec);
}

void SloRegistry::bind_fleet(const TelemetryCollector* collector) {
  std::lock_guard<std::mutex> lock(mutex_);
  fleet_ = collector;
}

std::vector<SloResult> SloRegistry::evaluate(std::optional<double> now) {
  std::vector<SloResult> results;
  std::uint64_t violations = 0;
  std::uint64_t evaluated = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tick_ += 1.0;
    const double t = now.value_or(tick_);
    // One fleet snapshot per round so every check sees the same instant.
    const MetricsSnapshot fleet =
        fleet_ != nullptr ? fleet_->fleet() : MetricsSnapshot{};

    results.reserve(specs_.size());
    for (const SloSpec& spec : specs_) {
      SloResult result;
      result.spec = spec;

      MetricProbe probe =
          fleet_ != nullptr ? probe_fleet(fleet, spec.metric) : MetricProbe{};
      if (!probe.scalar.has_value() && !probe.hist.has_value()) {
        probe = probe_registry(spec.metric);
      }

      std::optional<double> observed;
      switch (spec.stat) {
        case SloSpec::Stat::kValue:
          observed = probe.scalar;
          break;
        case SloSpec::Stat::kCount:
          if (probe.hist.has_value()) {
            observed = static_cast<double>(probe.hist->count);
          } else {
            observed = probe.scalar;
          }
          break;
        case SloSpec::Stat::kMean:
          if (probe.hist.has_value() && probe.hist->count > 0) {
            observed =
                probe.hist->sum / static_cast<double>(probe.hist->count);
          }
          break;
        case SloSpec::Stat::kP50:
        case SloSpec::Stat::kP95:
        case SloSpec::Stat::kP99:
          if (probe.hist.has_value()) {
            const double q = spec.stat == SloSpec::Stat::kP50   ? 0.50
                             : spec.stat == SloSpec::Stat::kP95 ? 0.95
                                                                : 0.99;
            observed =
                quantile_from_buckets(probe.hist->bounds, probe.hist->buckets, q);
          }
          break;
        case SloSpec::Stat::kRate: {
          std::optional<double> level = probe.scalar;
          if (!level.has_value() && probe.hist.has_value()) {
            level = static_cast<double>(probe.hist->count);
          }
          if (level.has_value()) {
            auto it = rate_series_.find(spec.metric);
            if (it == rate_series_.end()) {
              it = rate_series_.emplace(spec.metric, TimeSeries(64)).first;
            }
            it->second.sample(t, *level);
            observed = it->second.rate_per_second();
          }
          break;
        }
      }

      if (observed.has_value()) {
        result.evaluable = true;
        result.observed = *observed;
        result.pass = compare(*observed, spec.cmp, spec.threshold);
        ++evaluated;
        if (!result.pass) ++violations;
      }
      results.push_back(std::move(result));
    }
    latest_ = results;
  }

  // Registry writes happen outside our lock (the exporter calls us while
  // walking the registry; same-order locking avoids surprises).
  static auto& evaluations_counter = counter("slo.evaluations");
  static auto& violations_counter = counter("slo.violations");
  evaluations_counter.inc(evaluated);
  violations_counter.inc(violations);
  gauge("slo.checks.pass")
      .set(static_cast<double>(evaluated - violations));
  gauge("slo.checks.fail").set(static_cast<double>(violations));
  return results;
}

std::vector<SloResult> SloRegistry::results() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return latest_;
}

std::size_t SloRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return specs_.size();
}

void SloRegistry::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  specs_.clear();
  latest_.clear();
  rate_series_.clear();
  fleet_ = nullptr;
  tick_ = 0.0;
}

std::string telemetry_dashboard(const TelemetryCollector* collector,
                                std::size_t top_k) {
  using detail::json_number;
  std::ostringstream out;
  out << "== coda telemetry ==\n";

  if (collector != nullptr) {
    const auto nodes = collector->nodes();
    out << "fleet: " << nodes.size() << " node(s), "
        << collector->reports_ingested() << " report(s) ingested\n";
    for (const std::string& metric : collector->tracked()) {
      const auto fleet_series = collector->series("", metric);
      out << "  " << metric << ':';
      if (fleet_series.has_value() && !fleet_series->empty()) {
        out << " fleet=" << json_number(fleet_series->latest().value)
            << " rate=" << json_number(fleet_series->rate_per_second())
            << "/s";
      } else {
        out << " (no samples)";
      }
      const auto ranked = collector->top_k(metric, top_k);
      if (!ranked.empty()) {
        out << " top:";
        for (const auto& [node, value] : ranked) {
          out << ' ' << node << '=' << json_number(value);
        }
      }
      out << '\n';
    }
    out << "== nodes ==\n";
    for (const std::string& node : nodes) {
      const MetricsSnapshot snap = collector->node_snapshot(node);
      out << "  " << node << ": counters=" << snap.counters.size()
          << " gauges=" << snap.gauges.size()
          << " histograms=" << snap.histograms.size() << '\n';
    }
    // Fleet hot-path table (ISSUE 9): published prof.* counters, ranked
    // by the profiler's deterministic (calls desc, region asc) order.
    const auto hot = collector->hot_paths(top_k * 4);
    if (!hot.empty()) {
      out << "== hot paths (fleet) ==\n";
      for (const auto& row : hot) {
        out << "  " << row.region << ": calls=" << row.calls
            << " self=" << json_number(row.self_seconds) << "s\n";
      }
    }
  } else {
    out << "fleet: (no collector bound; registry-only view)\n";
  }

  out << "== slo ==\n";
  const auto results = global_slos().evaluate();
  if (results.empty()) out << "  (no checks registered)\n";
  for (const SloResult& r : results) {
    const char* verdict = !r.evaluable ? " n/a" : r.pass ? "PASS" : "FAIL";
    out << "  [" << verdict << "] " << r.spec.metric << ' '
        << stat_name(r.spec.stat) << ' ' << cmp_name(r.spec.cmp) << ' '
        << json_number(r.spec.threshold);
    if (r.evaluable) {
      out << "  (observed " << json_number(r.observed) << ')';
    } else {
      out << "  (metric absent)";
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace coda::obs
