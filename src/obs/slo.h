// Declarative SLO checks (DESIGN.md §12): thresholds over collected
// metrics, written in a one-line text syntax and evaluated against the
// telemetry the fleet actually reported (or the process-wide registry
// when no collector is bound):
//
//   "<metric> <stat> <cmp> <threshold>"
//   e.g.  "eval.claim.wait p99 < 0.5"
//         "net.fault.drops rate < 100"
//         "darr.lookup.hit value >= 1"
//
// stats:  value (counter/gauge), count (histogram count or counter),
//         mean, p50, p95, p99 (histograms), rate (per-second change of a
//         counter-like metric, measured across evaluate() calls)
// cmps:   < <= > >=
//
// Results land in obs exports: `slo.evaluations` / `slo.violations`
// counters, `slo.checks.pass` / `slo.checks.fail` gauges, and a "slo"
// section in snapshot_json(). The text dashboard (telemetry_dashboard())
// renders the same results for humans.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/obs/collector.h"
#include "src/obs/timeseries.h"

namespace coda::obs {

/// One parsed SLO check.
struct SloSpec {
  enum class Stat : std::uint8_t {
    kValue = 0,
    kCount,
    kMean,
    kP50,
    kP95,
    kP99,
    kRate,
  };
  enum class Cmp : std::uint8_t { kLt = 0, kLe, kGt, kGe };

  std::string metric;
  Stat stat = Stat::kValue;
  Cmp cmp = Cmp::kLt;
  double threshold = 0.0;
  std::string text;  ///< the original spec line
};

/// Parses the one-line syntax above; throws InvalidArgument on malformed
/// input (wrong token count, unknown stat/comparator, bad number).
SloSpec parse_slo(const std::string& text);

/// Outcome of one check at one evaluation.
struct SloResult {
  SloSpec spec;
  double observed = 0.0;
  bool evaluable = false;  ///< false = metric absent; not a violation
  bool pass = true;
};

/// The set of active SLO checks. Evaluation reads the bound
/// TelemetryCollector's fleet aggregate when one is bound (checks run
/// against *collected* telemetry, which rode the fault model), falling
/// back to the process-wide registry, per metric. Thread-safe.
class SloRegistry {
 public:
  /// The process-wide set used by exports; benches/tests add checks here.
  static SloRegistry& instance();

  void add(const SloSpec& spec);
  void add(const std::string& text) { add(parse_slo(text)); }

  /// Binds (or, with nullptr, unbinds) the fleet collector consulted
  /// first by evaluate(). The collector must outlive the binding.
  void bind_fleet(const TelemetryCollector* collector);

  /// Evaluates every check. `now` timestamps this round's rate samples
  /// (pass the SimNet logical clock); omitted, an internal tick counter
  /// advances by 1 per call. Updates slo.* counters/gauges and stores the
  /// results for results()/exports.
  std::vector<SloResult> evaluate(std::optional<double> now = std::nullopt);

  /// Results of the most recent evaluate() (empty before the first).
  std::vector<SloResult> results() const;

  std::size_t size() const;

  /// Drops every check, result, rate series, and the fleet binding.
  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<SloSpec> specs_;
  std::vector<SloResult> latest_;
  const TelemetryCollector* fleet_ = nullptr;
  // Rate measurement: one series per rate-stat metric, sampled each
  // evaluation round.
  std::map<std::string, TimeSeries> rate_series_;
  double tick_ = 0.0;
};

/// Shorthand for SloRegistry::instance().
SloRegistry& global_slos();

/// Renders the human-readable telemetry dashboard (the `coda-telemetry`
/// view): fleet summary + tracked-series table from `collector` (may be
/// nullptr for the registry-only view), followed by a fresh SLO
/// evaluation. `top_k` bounds the per-metric node ranking.
std::string telemetry_dashboard(const TelemetryCollector* collector = nullptr,
                                std::size_t top_k = 3);

}  // namespace coda::obs
