// Chrome trace-event ("Trace Event Format") exporter: renders the span
// ring as JSON loadable in Perfetto / chrome://tracing. Mapping:
//   node  -> pid  ("" = the ambient process, shown as "local")
//   thread-> tid  (steady spans; numbered per process in first-seen order)
//   spans -> "X" complete events (ts/dur in microseconds)
//   SimNet logical spans -> a dedicated tid-0 "network" track per node,
//     shifted onto the steady timeline via the trace's alignment anchor
//   registry counters -> one trailing "C" counter sample each
// Every event carries trace/span/parent ids and the clock domain in its
// args, so the causal tree survives the visual grouping.
#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/json.h"
#include "src/obs/obs.h"
#include "src/util/error.h"

namespace coda::obs {

namespace {

using detail::json_escape;
using detail::json_number;

constexpr int kNetworkTid = 0;

std::string process_label(const std::string& node) {
  return node.empty() ? std::string("local") : node;
}

}  // namespace

std::string export_chrome_trace() {
  auto& tracer = Tracer::instance();
  const std::vector<SpanRecord> spans = tracer.snapshot();
  const auto anchors = tracer.anchors();

  // Stable pid per node name, sorted so repeated exports agree.
  std::map<std::string, int> pids;
  for (const auto& s : spans) pids.emplace(s.node, 0);
  if (pids.empty()) pids.emplace(std::string(), 0);
  int next_pid = 1;
  for (auto& [node, pid] : pids) pid = next_pid++;

  // Steady-span tids numbered per process, first-seen order; tid 0 is the
  // logical-clock "network" track.
  std::map<std::pair<int, std::uint64_t>, int> tids;
  std::map<int, int> next_tid;

  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& event_json) {
    if (!first) out << ',';
    first = false;
    out << event_json;
  };

  for (const auto& [node, pid] : pids) {
    std::ostringstream meta;
    meta << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << pid
         << ",\"tid\":0,\"args\":{\"name\":\""
         << json_escape(process_label(node)) << "\"}}";
    emit(meta.str());
    std::ostringstream net;
    net << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << pid
        << ",\"tid\":" << kNetworkTid << ",\"args\":{\"name\":\"network\"}}";
    emit(net.str());
  }

  double last_ts_us = 0.0;
  for (const auto& s : spans) {
    const int pid = pids.at(s.node);
    int tid = kNetworkTid;
    double start = s.start_seconds;
    if (s.clock == ClockDomain::kLogical) {
      // Shift onto the steady timeline via the trace's anchor (a steady/
      // logical pair observed together). Anchorless traces keep raw
      // logical time — still internally consistent, just not aligned.
      const auto it = anchors.find(s.trace_id);
      if (it != anchors.end()) {
        start = it->second.steady_seconds +
                (s.start_seconds - it->second.logical_seconds);
      }
    } else {
      const auto key = std::make_pair(pid, s.thread);
      auto it = tids.find(key);
      if (it == tids.end()) {
        tid = ++next_tid[pid];
        tids.emplace(key, tid);
        std::ostringstream meta;
        meta << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << pid
             << ",\"tid\":" << tid << ",\"args\":{\"name\":\"thread "
             << tid << "\"}}";
        emit(meta.str());
      } else {
        tid = it->second;
      }
    }
    const double ts_us = start * 1e6;
    const double dur_us = s.duration_seconds * 1e6;
    last_ts_us = std::max(last_ts_us, ts_us + dur_us);
    std::ostringstream ev;
    ev << "{\"ph\":\"X\",\"name\":\"" << json_escape(s.name)
       << "\",\"cat\":\""
       << (s.clock == ClockDomain::kLogical ? "network" : "compute")
       << "\",\"pid\":" << pid << ",\"tid\":" << tid
       << ",\"ts\":" << json_number(ts_us)
       << ",\"dur\":" << json_number(dur_us) << ",\"args\":{\"trace\":"
       << s.trace_id << ",\"span\":" << s.id << ",\"parent\":" << s.parent_id
       << ",\"clock\":\""
       << (s.clock == ClockDomain::kLogical ? "logical" : "steady") << '"';
    for (const auto& [key, value] : s.tags) {
      ev << ",\"" << json_escape(key) << "\":\"" << json_escape(value)
         << '"';
    }
    ev << "}}";
    emit(ev.str());
  }

  // One trailing sample per registry counter so the totals are visible on
  // the timeline.
  const int counter_pid = pids.begin()->second;
  for (const auto& [name, value] :
       MetricsRegistry::instance().counter_values()) {
    if (value == 0) continue;
    std::ostringstream ev;
    ev << "{\"ph\":\"C\",\"name\":\"" << json_escape(name)
       << "\",\"pid\":" << counter_pid << ",\"ts\":" << json_number(last_ts_us)
       << ",\"args\":{\"value\":" << value << "}}";
    emit(ev.str());
  }

  // Profiler counter tracks: the live region merge (not the published
  // prof.* registry counters, which only exist after a telemetry publish)
  // so a plain single-process trace still carries the hot-region totals.
  // region_table() is sorted (calls desc, name asc), deterministic per run.
  for (const auto& region : prof::region_table()) {
    if (region.calls == 0) continue;
    std::ostringstream ev;
    ev << "{\"ph\":\"C\",\"name\":\"prof." << json_escape(region.name)
       << "\",\"pid\":" << counter_pid << ",\"ts\":" << json_number(last_ts_us)
       << ",\"args\":{\"calls\":" << region.calls
       << ",\"self_ns\":" << region.self_ns << "}}";
    emit(ev.str());
  }

  out << "],\"otherData\":{\"recorded\":" << tracer.recorded()
      << ",\"dropped\":" << tracer.dropped() << "}}";
  return out.str();
}

void write_chrome_trace(const std::string& path) {
  std::ofstream file(path);
  require(file.good(),
          "obs::write_chrome_trace: cannot open '" + path + "'");
  file << export_chrome_trace() << '\n';
}

}  // namespace coda::obs
