#include "src/obs/event_log.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace coda::obs {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarn:
      return "warn";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

EventLog::EventLog(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

EventLog& EventLog::instance() {
  static EventLog log;
  return log;
}

void EventLog::log(Event event) {
  static auto& recorded_metric = counter("obs.events.recorded");
  bool wrapped = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++total_recorded_;
    if (ring_.size() < capacity_) {
      ring_.push_back(std::move(event));
    } else {
      wrapped = true;
      ring_[next_slot_] = std::move(event);
      next_slot_ = (next_slot_ + 1) % capacity_;
    }
  }
  recorded_metric.inc();
  (void)wrapped;
}

std::vector<Event> EventLog::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Event> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(next_slot_ + i) % capacity_]);
    }
  }
  return out;
}

std::uint64_t EventLog::recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_recorded_;
}

std::uint64_t EventLog::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_recorded_ - ring_.size();
}

void EventLog::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  next_slot_ = 0;
  total_recorded_ = 0;
}

std::string EventLog::dump_tail(std::size_t max_events) const {
  std::vector<Event> events = snapshot();
  const std::uint64_t skipped = dropped();
  std::size_t begin = 0;
  if (events.size() > max_events) begin = events.size() - max_events;

  std::ostringstream out;
  out << "flight recorder: " << (events.size() - begin) << " of "
      << events.size() << " retained events (" << skipped
      << " overwritten)\n";
  for (std::size_t i = begin; i < events.size(); ++i) {
    const Event& e = events[i];
    out << "  [" << severity_name(e.severity) << "] t=" << e.seconds << "s "
        << e.name;
    if (!e.node.empty()) out << " node=" << e.node;
    if (e.trace_id != 0)
      out << " trace=" << e.trace_id << " span=" << e.span_id;
    for (const auto& [key, value] : e.fields) {
      out << " " << key << "=" << value;
    }
    out << "\n";
  }
  return out.str();
}

void event(Severity severity, std::string name,
           std::initializer_list<std::pair<std::string, std::string>> fields) {
  Event e;
  e.seconds = Tracer::instance().now_seconds();
  e.severity = severity;
  e.name = std::move(name);
  e.fields.assign(fields.begin(), fields.end());
  e.trace_id = Tracer::current_trace();
  e.span_id = Tracer::current_span();
  e.node = Tracer::current_node();
  EventLog::instance().log(std::move(e));
}

void flight_dump_if_env(const std::string& reason) {
  const char* env = std::getenv("CODA_FLIGHT_DUMP");
  if (env == nullptr || std::string(env) == "0") return;
  std::fprintf(stderr, "== flight recorder dump: %s ==\n%s", reason.c_str(),
               EventLog::instance().dump_tail().c_str());
}

}  // namespace coda::obs
