#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/obs/json.h"
#include "src/obs/obs.h"
#include "src/util/error.h"

namespace coda::obs {

namespace {

using detail::json_escape;
using detail::json_number;

void append_histogram_json(std::ostringstream& out, const Histogram& h) {
  out << "{\"count\":" << h.count() << ",\"sum\":" << json_number(h.sum())
      << ",\"buckets\":[";
  for (std::size_t i = 0; i < h.n_buckets(); ++i) {
    if (i > 0) out << ',';
    const bool overflow = i == h.bounds().size();
    out << "{\"le\":"
        << (overflow ? std::string("\"inf\"") : json_number(h.bounds()[i]))
        << ",\"count\":" << h.bucket_count(i) << '}';
  }
  out << "]}";
}

void append_tags_json(std::ostringstream& out, const SpanRecord& s) {
  out << '{';
  bool first = true;
  for (const auto& [key, value] : s.tags) {
    if (!first) out << ',';
    first = false;
    out << '"' << json_escape(key) << "\":\"" << json_escape(value) << '"';
  }
  out << '}';
}

/// CODA_*_DUMP convention: unset/""/"0" = no-op, "1" = print to stdout,
/// anything else = a file path. `render` is only called when dumping.
template <typename Render>
void env_dump(const char* env_name, const char* banner, Render render) {
  const char* value = std::getenv(env_name);
  if (value == nullptr || value[0] == '\0' ||
      (value[0] == '0' && value[1] == '\0')) {
    return;
  }
  const std::string payload = render();
  if (value[0] == '1' && value[1] == '\0') {
    std::printf("\n--- %s ---\n%s\n", banner, payload.c_str());
    return;
  }
  std::ofstream file(value);
  require(file.good(), std::string("obs: cannot open dump path '") + value +
                           "' (" + env_name + ")");
  file << payload << '\n';
}

}  // namespace

std::string snapshot_json(std::size_t max_spans) {
  auto& registry = MetricsRegistry::instance();
  auto& tracer = Tracer::instance();
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : registry.counter_values()) {
    if (!first) out << ',';
    first = false;
    out << '"' << json_escape(name) << "\":" << value;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : registry.gauge_values()) {
    if (!first) out << ',';
    first = false;
    out << '"' << json_escape(name) << "\":" << json_number(value);
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : registry.histogram_views()) {
    if (!first) out << ',';
    first = false;
    out << '"' << json_escape(name) << "\":";
    append_histogram_json(out, *histogram);
  }
  out << "},\"candidates\":{";
  first = true;
  for (const auto& [path, cost] : CandidateCosts::instance().snapshot()) {
    if (!first) out << ',';
    first = false;
    out << '"' << json_escape(path) << "\":{\"folds\":" << cost.folds
        << ",\"fold_seconds\":" << json_number(cost.fold_seconds)
        << ",\"prefix_hits\":" << cost.prefix_hits
        << ",\"prefix_misses\":" << cost.prefix_misses
        << ",\"cached\":" << cost.cached
        << ",\"prepare_seconds\":" << json_number(cost.prepare_seconds)
        << ",\"fit_seconds\":" << json_number(cost.fit_seconds)
        << ",\"score_seconds\":" << json_number(cost.score_seconds)
        << ",\"claim_wait_seconds\":" << json_number(cost.claim_wait_seconds)
        << ",\"pruned_at_rung\":" << cost.pruned_at_rung << '}';
  }
  out << "},\"events\":{\"recorded\":" << EventLog::instance().recorded()
      << ",\"dropped\":" << EventLog::instance().dropped()
      << "},\"spans\":{\"recorded\":" << tracer.recorded()
      << ",\"dropped\":" << tracer.dropped() << ",\"recent\":[";
  const auto spans = tracer.snapshot();
  const std::size_t start =
      spans.size() > max_spans ? spans.size() - max_spans : 0;
  for (std::size_t i = start; i < spans.size(); ++i) {
    if (i > start) out << ',';
    const auto& s = spans[i];
    out << "{\"id\":" << s.id << ",\"parent\":" << s.parent_id
        << ",\"trace\":" << s.trace_id << ",\"name\":\""
        << json_escape(s.name) << "\",\"node\":\"" << json_escape(s.node)
        << "\",\"clock\":\""
        << (s.clock == ClockDomain::kLogical ? "logical" : "steady")
        << "\",\"start\":" << json_number(s.start_seconds)
        << ",\"dur\":" << json_number(s.duration_seconds) << ",\"tags\":";
    append_tags_json(out, s);
    out << '}';
  }
  // Per-node MetricScope shards (fleet telemetry, DESIGN.md §12): node
  // names and metric names both iterate sorted, so the export is
  // byte-deterministic across identical runs.
  out << "]},\"nodes\":{";
  first = true;
  for (const auto& node : MetricScope::nodes()) {
    const MetricScope* scope = MetricScope::find(node);
    if (scope == nullptr) continue;
    if (!first) out << ',';
    first = false;
    out << '"' << json_escape(node) << "\":{\"counters\":{";
    bool inner = true;
    for (const auto& [name, value] : scope->registry().counter_values()) {
      if (!inner) out << ',';
      inner = false;
      out << '"' << json_escape(name) << "\":" << value;
    }
    out << "},\"gauges\":{";
    inner = true;
    for (const auto& [name, value] : scope->registry().gauge_values()) {
      if (!inner) out << ',';
      inner = false;
      out << '"' << json_escape(name) << "\":" << json_number(value);
    }
    out << "},\"histograms\":{";
    inner = true;
    for (const auto& [name, histogram] : scope->registry().histogram_views()) {
      if (!inner) out << ',';
      inner = false;
      out << '"' << json_escape(name) << "\":";
      append_histogram_json(out, *histogram);
    }
    out << "}}";
  }
  // Last SLO evaluation (callers run global_slos().evaluate() themselves:
  // rendering a snapshot must not mutate the metrics it snapshots).
  out << "},\"slo\":[";
  first = true;
  for (const auto& r : global_slos().results()) {
    if (!first) out << ',';
    first = false;
    out << "{\"check\":\"" << json_escape(r.spec.text) << "\",\"observed\":";
    if (r.evaluable) {
      out << json_number(r.observed);
    } else {
      out << "null";
    }
    out << ",\"pass\":" << (r.evaluable && r.pass ? "true" : "false") << '}';
  }
  out << "]}";
  return out.str();
}

std::string dump() {
  auto& registry = MetricsRegistry::instance();
  auto& tracer = Tracer::instance();
  std::ostringstream out;
  out << "== counters ==\n";
  for (const auto& [name, value] : registry.counter_values()) {
    out << "  " << name << " = " << value << '\n';
  }
  out << "== gauges ==\n";
  for (const auto& [name, value] : registry.gauge_values()) {
    out << "  " << name << " = " << json_number(value) << '\n';
  }
  out << "== histograms ==\n";
  for (const auto& [name, histogram] : registry.histogram_views()) {
    out << "  " << name << ": count=" << histogram->count()
        << " sum=" << json_number(histogram->sum());
    if (histogram->count() > 0) {
      out << " mean="
          << json_number(histogram->sum() /
                         static_cast<double>(histogram->count()))
          << " p50=" << json_number(histogram->quantile(0.50))
          << " p95=" << json_number(histogram->quantile(0.95))
          << " p99=" << json_number(histogram->quantile(0.99));
    }
    out << '\n';
    for (std::size_t i = 0; i < histogram->n_buckets(); ++i) {
      const std::uint64_t n = histogram->bucket_count(i);
      if (n == 0) continue;
      out << "    le ";
      if (i == histogram->bounds().size()) {
        out << "+inf";
      } else {
        out << json_number(histogram->bounds()[i]);
      }
      out << ": " << n << '\n';
    }
  }
  out << "== candidates ==\n";
  for (const auto& [path, cost] : CandidateCosts::instance().snapshot()) {
    out << "  " << path << ": folds=" << cost.folds
        << " fold_seconds=" << json_number(cost.fold_seconds)
        << " prefix_hits=" << cost.prefix_hits
        << " prefix_misses=" << cost.prefix_misses
        << " cached=" << cost.cached
        << " prepare=" << json_number(cost.prepare_seconds)
        << " fit=" << json_number(cost.fit_seconds)
        << " score=" << json_number(cost.score_seconds)
        << " claim_wait=" << json_number(cost.claim_wait_seconds)
        << " pruned_at_rung=" << cost.pruned_at_rung << '\n';
  }
  out << "== spans ==\n  recorded=" << tracer.recorded()
      << " dropped=" << tracer.dropped() << '\n'
      << "== events ==\n  recorded=" << EventLog::instance().recorded()
      << " dropped=" << EventLog::instance().dropped() << '\n';
  return out.str();
}

void dump_if_env() {
  env_dump("CODA_METRICS_DUMP", "coda metrics snapshot",
           [] { return snapshot_json(); });
  trace_dump_if_env();
  env_dump("CODA_PROFILE_DUMP", "coda folded profile",
           [] { return prof::folded(); });
}

void trace_dump_if_env() {
  env_dump("CODA_TRACE_DUMP", "coda chrome trace",
           [] { return export_chrome_trace(); });
}

void reset_all() {
  MetricsRegistry::instance().reset();
  MetricScope::reset_values();
  reset_instance_ids();
  Tracer::instance().clear();
  EventLog::instance().clear();
  CandidateCosts::instance().reset();
  prof::reset();
  global_slos().clear();
}

}  // namespace coda::obs
