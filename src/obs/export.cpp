#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/obs/obs.h"
#include "src/util/error.h"

namespace coda::obs {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return v > 0 ? "\"inf\"" : "\"-inf\"";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

void append_histogram_json(std::ostringstream& out, const Histogram& h) {
  out << "{\"count\":" << h.count() << ",\"sum\":" << json_number(h.sum())
      << ",\"buckets\":[";
  for (std::size_t i = 0; i < h.n_buckets(); ++i) {
    if (i > 0) out << ',';
    const bool overflow = i == h.bounds().size();
    out << "{\"le\":"
        << (overflow ? std::string("\"inf\"") : json_number(h.bounds()[i]))
        << ",\"count\":" << h.bucket_count(i) << '}';
  }
  out << "]}";
}

}  // namespace

std::string snapshot_json(std::size_t max_spans) {
  auto& registry = MetricsRegistry::instance();
  auto& tracer = Tracer::instance();
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : registry.counter_values()) {
    if (!first) out << ',';
    first = false;
    out << '"' << json_escape(name) << "\":" << value;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : registry.gauge_values()) {
    if (!first) out << ',';
    first = false;
    out << '"' << json_escape(name) << "\":" << json_number(value);
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : registry.histogram_views()) {
    if (!first) out << ',';
    first = false;
    out << '"' << json_escape(name) << "\":";
    append_histogram_json(out, *histogram);
  }
  out << "},\"spans\":{\"recorded\":" << tracer.recorded()
      << ",\"dropped\":" << tracer.dropped() << ",\"recent\":[";
  const auto spans = tracer.snapshot();
  const std::size_t start =
      spans.size() > max_spans ? spans.size() - max_spans : 0;
  for (std::size_t i = start; i < spans.size(); ++i) {
    if (i > start) out << ',';
    const auto& s = spans[i];
    out << "{\"id\":" << s.id << ",\"parent\":" << s.parent_id << ",\"name\":\""
        << json_escape(s.name) << "\",\"start\":" << json_number(s.start_seconds)
        << ",\"dur\":" << json_number(s.duration_seconds) << '}';
  }
  out << "]}}";
  return out.str();
}

std::string dump() {
  auto& registry = MetricsRegistry::instance();
  auto& tracer = Tracer::instance();
  std::ostringstream out;
  out << "== counters ==\n";
  for (const auto& [name, value] : registry.counter_values()) {
    out << "  " << name << " = " << value << '\n';
  }
  out << "== gauges ==\n";
  for (const auto& [name, value] : registry.gauge_values()) {
    out << "  " << name << " = " << json_number(value) << '\n';
  }
  out << "== histograms ==\n";
  for (const auto& [name, histogram] : registry.histogram_views()) {
    out << "  " << name << ": count=" << histogram->count()
        << " sum=" << json_number(histogram->sum());
    if (histogram->count() > 0) {
      out << " mean="
          << json_number(histogram->sum() /
                         static_cast<double>(histogram->count()));
    }
    out << '\n';
    for (std::size_t i = 0; i < histogram->n_buckets(); ++i) {
      const std::uint64_t n = histogram->bucket_count(i);
      if (n == 0) continue;
      out << "    le ";
      if (i == histogram->bounds().size()) {
        out << "+inf";
      } else {
        out << json_number(histogram->bounds()[i]);
      }
      out << ": " << n << '\n';
    }
  }
  out << "== spans ==\n  recorded=" << tracer.recorded()
      << " dropped=" << tracer.dropped() << '\n';
  return out.str();
}

void dump_if_env() {
  const char* value = std::getenv("CODA_METRICS_DUMP");
  if (value == nullptr || value[0] == '\0' ||
      (value[0] == '0' && value[1] == '\0')) {
    return;
  }
  const std::string json = snapshot_json();
  if (value[0] == '1' && value[1] == '\0') {
    std::printf("\n--- coda metrics snapshot ---\n%s\n", json.c_str());
    return;
  }
  std::ofstream file(value);
  require(file.good(),
          std::string("obs::dump_if_env: cannot open '") + value + "'");
  file << json << '\n';
}

void reset_all() {
  MetricsRegistry::instance().reset();
  Tracer::instance().clear();
}

}  // namespace coda::obs
