// Minimal JSON emission helpers shared by the observability exporters
// (snapshot_json and the Chrome trace exporter). Not a JSON library —
// just escaping and float formatting.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>

namespace coda::obs::detail {

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

inline std::string json_number(double v) {
  if (!std::isfinite(v)) return v > 0 ? "\"inf\"" : "\"-inf\"";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace coda::obs::detail
