// Flight recorder (observability layer): a bounded ring of structured
// events — severity, name, key/value fields, and causal linkage to the
// recording thread's ambient span/trace. Chaos and degradation paths
// (fault injections, retry give-ups, sticky local-only degradation, lease
// expiries, stale pushes) log here; when a chaos assertion fails or
// CooperativeFetch degrades, the tail is dumped together with the fault
// schedule so the failure can be reconstructed without re-running.
//
// Like the span tracer, logging never blocks on consumers: old events are
// overwritten and counted as drops.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace coda::obs {

enum class Severity : std::uint8_t { kInfo = 0, kWarn = 1, kError = 2 };

const char* severity_name(Severity s);

/// One flight-recorder entry.
struct Event {
  double seconds = 0.0;  ///< steady clock, tracer epoch
  Severity severity = Severity::kInfo;
  std::string name;  ///< dot-separated family, e.g. "net.fault.drop"
  std::vector<std::pair<std::string, std::string>> fields;
  std::uint64_t trace_id = 0;  ///< ambient trace at log time (0 = none)
  std::uint64_t span_id = 0;   ///< ambient span at log time (0 = none)
  std::string node;            ///< ambient node attribution ("" = process)
};

/// Bounded ring of Events.
class EventLog {
 public:
  explicit EventLog(std::size_t capacity = 1024);

  /// The process-wide flight recorder.
  static EventLog& instance();

  void log(Event event);

  /// Retained events, oldest first.
  std::vector<Event> snapshot() const;

  std::uint64_t recorded() const;
  std::uint64_t dropped() const;
  void clear();

  /// Human-readable dump of the newest `max_events` entries (oldest of
  /// those first), one line per event.
  std::string dump_tail(std::size_t max_events = 64) const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<Event> ring_;
  std::size_t next_slot_ = 0;
  std::uint64_t total_recorded_ = 0;
};

/// Logs to the process-wide EventLog, stamping the steady-clock time and
/// the calling thread's ambient trace/span/node automatically.
void event(Severity severity, std::string name,
           std::initializer_list<std::pair<std::string, std::string>> fields =
               {});

/// Honours the CODA_FLIGHT_DUMP environment variable: unset/"0" = no-op,
/// otherwise prints `reason` and the flight-recorder tail to stderr.
/// Called on sticky degradation so long runs surface why cooperation was
/// abandoned without test harness involvement.
void flight_dump_if_env(const std::string& reason);

}  // namespace coda::obs
