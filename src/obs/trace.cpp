#include "src/obs/trace.h"

#include "src/util/error.h"

namespace coda::obs {

namespace {
thread_local std::uint64_t t_current_span = 0;
}  // namespace

Tracer::Tracer(std::size_t capacity)
    : capacity_(capacity), epoch_(std::chrono::steady_clock::now()) {
  require(capacity > 0, "Tracer: capacity must be positive");
  ring_.reserve(capacity);
}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::record(SpanRecord span) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(span));
  } else {
    ring_[next_slot_] = std::move(span);
  }
  next_slot_ = (next_slot_ + 1) % capacity_;
  ++total_recorded_;
}

std::vector<SpanRecord> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // Ring is full: next_slot_ is the oldest entry.
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(next_slot_ + i) % capacity_]);
    }
  }
  return out;
}

std::uint64_t Tracer::recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_recorded_;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_recorded_ - ring_.size();
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  next_slot_ = 0;
  total_recorded_ = 0;
}

std::uint64_t Tracer::current_span() { return t_current_span; }

void Tracer::set_current_span(std::uint64_t id) { t_current_span = id; }

ScopedSpan::ScopedSpan(std::string name, Tracer& tracer)
    : tracer_(tracer),
      name_(std::move(name)),
      id_(tracer.next_id()),
      parent_id_(Tracer::current_span()),
      start_seconds_(tracer.now_seconds()) {
  Tracer::set_current_span(id_);
}

ScopedSpan::~ScopedSpan() {
  Tracer::set_current_span(parent_id_);
  SpanRecord span;
  span.id = id_;
  span.parent_id = parent_id_;
  span.name = std::move(name_);
  span.start_seconds = start_seconds_;
  span.duration_seconds = tracer_.now_seconds() - start_seconds_;
  tracer_.record(std::move(span));
}

}  // namespace coda::obs
