#include "src/obs/trace.h"

#include <functional>
#include <thread>

#include "src/obs/metrics.h"

namespace coda::obs {
namespace {

thread_local std::uint64_t t_current_span = 0;
thread_local std::uint64_t t_current_trace = 0;
thread_local std::string t_current_node;

std::uint64_t this_thread_hash() {
  return static_cast<std::uint64_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

}  // namespace

Tracer::Tracer(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      epoch_(std::chrono::steady_clock::now()) {
  ring_.reserve(capacity_);
}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::record(SpanRecord span) {
  // Counters are resolved outside the ring lock; registration is
  // idempotent and the registry has its own synchronisation.
  static auto& recorded_metric = counter("obs.trace.recorded");
  static auto& dropped_metric = counter("obs.trace.dropped");
  bool wrapped = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++total_recorded_;
    if (ring_.size() < capacity_) {
      ring_.push_back(std::move(span));
    } else {
      wrapped = true;
      ring_[next_slot_] = std::move(span);
      next_slot_ = (next_slot_ + 1) % capacity_;
    }
  }
  recorded_metric.inc();
  if (wrapped) dropped_metric.inc();
}

std::uint64_t Tracer::record_span(
    std::string name, const TraceContext& parent, std::string node,
    ClockDomain clock, double start_seconds, double duration_seconds,
    std::vector<std::pair<std::string, std::string>> tags) {
  SpanRecord span;
  span.id = next_id();
  span.parent_id = parent.parent_span_id;
  span.trace_id = parent.valid() ? parent.trace_id : next_trace_id();
  span.name = std::move(name);
  span.node = std::move(node);
  span.thread = this_thread_hash();
  span.clock = clock;
  span.start_seconds = start_seconds;
  span.duration_seconds = duration_seconds;
  span.tags = std::move(tags);
  const std::uint64_t id = span.id;
  record(std::move(span));
  return id;
}

void Tracer::anchor(std::uint64_t trace_id, double steady_seconds,
                    double logical_seconds) {
  if (trace_id == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  anchors_.emplace(trace_id, Anchor{steady_seconds, logical_seconds});
}

std::map<std::uint64_t, Tracer::Anchor> Tracer::anchors() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return anchors_;
}

std::vector<SpanRecord> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // Ring is full: next_slot_ is the oldest entry.
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(next_slot_ + i) % capacity_]);
    }
  }
  return out;
}

std::uint64_t Tracer::recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_recorded_;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_recorded_ - ring_.size();
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  next_slot_ = 0;
  total_recorded_ = 0;
  anchors_.clear();
  id_source_.store(0, std::memory_order_relaxed);
  trace_source_.store(0, std::memory_order_relaxed);
}

std::uint64_t Tracer::current_span() { return t_current_span; }
void Tracer::set_current_span(std::uint64_t id) { t_current_span = id; }
std::uint64_t Tracer::current_trace() { return t_current_trace; }
void Tracer::set_current_trace(std::uint64_t id) { t_current_trace = id; }
const std::string& Tracer::current_node() { return t_current_node; }

ScopedSpan::ScopedSpan(std::string name, Tracer& tracer)
    : ScopedSpan(std::move(name),
                 TraceContext{t_current_trace, t_current_span}, tracer) {}

ScopedSpan::ScopedSpan(std::string name, const TraceContext& parent,
                       Tracer& tracer)
    : tracer_(tracer),
      name_(std::move(name)),
      node_(t_current_node),
      id_(tracer.next_id()),
      parent_id_(parent.parent_span_id),
      trace_id_(parent.valid() ? parent.trace_id : tracer.next_trace_id()),
      prev_trace_(t_current_trace),
      start_seconds_(tracer.now_seconds()) {
  t_current_span = id_;
  t_current_trace = trace_id_;
}

ScopedSpan::~ScopedSpan() {
  t_current_span = parent_id_;
  t_current_trace = prev_trace_;
  SpanRecord span;
  span.id = id_;
  span.parent_id = parent_id_;
  span.trace_id = trace_id_;
  span.name = std::move(name_);
  span.node = std::move(node_);
  span.thread = this_thread_hash();
  span.clock = ClockDomain::kSteady;
  span.start_seconds = start_seconds_;
  span.duration_seconds = tracer_.now_seconds() - start_seconds_;
  span.tags = std::move(tags_);
  tracer_.record(std::move(span));
}

void ScopedSpan::tag(std::string key, std::string value) {
  tags_.emplace_back(std::move(key), std::move(value));
}

void ScopedSpan::set_node(std::string node) { node_ = std::move(node); }

ContextScope::ContextScope(const TraceContext& ctx)
    : prev_trace_(t_current_trace), prev_span_(t_current_span) {
  t_current_trace = ctx.trace_id;
  t_current_span = ctx.parent_span_id;
}

ContextScope::ContextScope(const TraceContext& ctx, std::string node)
    : ContextScope(ctx) {
  node_set_ = true;
  prev_node_ = t_current_node;
  prev_scope_ = MetricScope::install(
      node.empty() ? nullptr : &MetricScope::for_node(node));
  t_current_node = std::move(node);
}

ContextScope::~ContextScope() {
  t_current_trace = prev_trace_;
  t_current_span = prev_span_;
  if (node_set_) {
    t_current_node = std::move(prev_node_);
    MetricScope::install(prev_scope_);
  }
}

NodeScope::NodeScope(std::string node) : prev_(t_current_node) {
  prev_scope_ = MetricScope::install(
      node.empty() ? nullptr : &MetricScope::for_node(node));
  t_current_node = std::move(node);
}

NodeScope::~NodeScope() {
  t_current_node = std::move(prev_);
  MetricScope::install(prev_scope_);
}

}  // namespace coda::obs
