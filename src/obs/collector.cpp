#include "src/obs/collector.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/obs/json.h"
#include "src/util/error.h"

namespace coda::obs {

TelemetryCollector::TelemetryCollector(std::size_t series_capacity)
    : series_capacity_(series_capacity) {
  require(series_capacity_ > 0,
          "TelemetryCollector: series capacity must be positive");
}

void TelemetryCollector::track(const std::string& metric) {
  require(!metric.empty(), "TelemetryCollector: metric name must be non-empty");
  std::lock_guard<std::mutex> lock(mutex_);
  if (std::find(tracked_.begin(), tracked_.end(), metric) == tracked_.end()) {
    tracked_.push_back(metric);
  }
}

std::vector<std::string> TelemetryCollector::tracked() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tracked_;
}

void TelemetryCollector::ingest(const std::string& node, double t,
                                const MetricsSnapshot& delta) {
  require(!node.empty(), "TelemetryCollector: node name must be non-empty");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    apply_snapshot_delta(per_node_[node], delta);
    ++ingested_;
    sample_tracked_locked(node, t);
  }
  static auto& ingested = counter("telemetry.reports.ingested");
  ingested.inc();
}

std::vector<std::string> TelemetryCollector::nodes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(per_node_.size());
  for (const auto& [name, snap] : per_node_) out.push_back(name);
  return out;  // std::map iteration: already sorted
}

std::uint64_t TelemetryCollector::reports_ingested() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ingested_;
}

MetricsSnapshot TelemetryCollector::node_snapshot(
    const std::string& node) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = per_node_.find(node);
  return it == per_node_.end() ? MetricsSnapshot{} : it->second;
}

MetricsSnapshot TelemetryCollector::fleet() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot out;
  for (const auto& [name, snap] : per_node_) out.merge_from(snap);
  return out;
}

std::optional<TimeSeries> TelemetryCollector::series(
    const std::string& node, const std::string& metric) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = series_.find({node, metric});
  if (it == series_.end()) return std::nullopt;
  return it->second;
}

double TelemetryCollector::rate(const std::string& node,
                                const std::string& metric) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = series_.find({node, metric});
  return it == series_.end() ? 0.0 : it->second.rate_per_second();
}

std::vector<std::pair<std::string, double>> TelemetryCollector::top_k(
    const std::string& metric, std::size_t k) const {
  std::vector<std::pair<std::string, double>> ranked;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ranked.reserve(per_node_.size());
    for (const auto& [name, snap] : per_node_) {
      ranked.emplace_back(name, probe(snap, metric).value_or(0.0));
    }
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) {
                     return a.second > b.second;  // stable: name ties keep
                   });                            // map (sorted) order
  if (ranked.size() > k) ranked.resize(k);
  return ranked;
}

std::vector<TelemetryCollector::HotPath> TelemetryCollector::hot_paths(
    std::size_t k) const {
  const MetricsSnapshot fleet_snapshot = fleet();
  const std::string prefix = "prof.";
  const std::string suffix = ".calls";
  std::vector<HotPath> out;
  for (const auto& [name, value] : fleet_snapshot.counters) {
    if (name.size() <= prefix.size() + suffix.size()) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
        0) {
      continue;
    }
    HotPath row;
    row.region = name.substr(
        prefix.size(), name.size() - prefix.size() - suffix.size());
    row.calls = value;
    const auto self =
        fleet_snapshot.counters.find(prefix + row.region + ".self_ns");
    if (self != fleet_snapshot.counters.end()) {
      row.self_seconds = static_cast<double>(self->second) * 1e-9;
    }
    out.push_back(std::move(row));
  }
  std::sort(out.begin(), out.end(), [](const HotPath& a, const HotPath& b) {
    if (a.calls != b.calls) return a.calls > b.calls;
    return a.region < b.region;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

std::optional<double> TelemetryCollector::probe(const MetricsSnapshot& snap,
                                                const std::string& metric) {
  if (const auto c = snap.counters.find(metric); c != snap.counters.end()) {
    return static_cast<double>(c->second);
  }
  if (const auto g = snap.gauges.find(metric); g != snap.gauges.end()) {
    return g->second;
  }
  if (const auto h = snap.histograms.find(metric);
      h != snap.histograms.end()) {
    return static_cast<double>(h->second.count);
  }
  return std::nullopt;
}

void TelemetryCollector::sample_tracked_locked(const std::string& node,
                                               double t) {
  if (tracked_.empty()) return;
  const MetricsSnapshot& mine = per_node_[node];
  for (const std::string& metric : tracked_) {
    const auto node_value = probe(mine, metric);
    if (node_value.has_value()) {
      auto it = series_.find({node, metric});
      if (it == series_.end()) {
        it = series_.emplace(std::make_pair(node, metric),
                             TimeSeries(series_capacity_))
                 .first;
      }
      it->second.sample(t, *node_value);
    }
    // Fleet-wide series: the sum over all nodes at this instant.
    double fleet_value = 0.0;
    bool any = false;
    for (const auto& [name, snap] : per_node_) {
      if (const auto v = probe(snap, metric); v.has_value()) {
        fleet_value += *v;
        any = true;
      }
    }
    if (any) {
      auto it = series_.find({std::string(), metric});
      if (it == series_.end()) {
        it = series_.emplace(std::make_pair(std::string(), metric),
                             TimeSeries(series_capacity_))
                 .first;
      }
      it->second.sample(t, fleet_value);
    }
  }
}

std::string TelemetryCollector::describe_divergence(
    const MetricsSnapshot& expected, double epsilon) const {
  const MetricsSnapshot fleet_snapshot = fleet();
  std::ostringstream out;
  std::size_t mismatches = 0;
  constexpr std::size_t kMaxReported = 8;
  const auto report = [&](const std::string& line) {
    ++mismatches;
    if (mismatches <= kMaxReported) out << line << '\n';
  };

  for (const auto& [name, value] : fleet_snapshot.counters) {
    const auto it = expected.counters.find(name);
    if (it == expected.counters.end()) {
      report("counter " + name + ": missing from expected");
    } else if (it->second != value) {
      report("counter " + name + ": fleet=" + std::to_string(value) +
             " expected=" + std::to_string(it->second));
    }
  }
  for (const auto& [name, value] : fleet_snapshot.gauges) {
    const auto it = expected.gauges.find(name);
    if (it == expected.gauges.end()) {
      report("gauge " + name + ": missing from expected");
    } else if (std::abs(it->second - value) >
               epsilon * std::max(1.0, std::abs(it->second))) {
      report("gauge " + name + ": fleet=" + detail::json_number(value) +
             " expected=" + detail::json_number(it->second));
    }
  }
  for (const auto& [name, h] : fleet_snapshot.histograms) {
    const auto it = expected.histograms.find(name);
    if (it == expected.histograms.end()) {
      report("histogram " + name + ": missing from expected");
      continue;
    }
    const HistogramSnapshot& e = it->second;
    if (e.bounds != h.bounds) {
      report("histogram " + name + ": bounds differ");
      continue;
    }
    if (e.count != h.count || e.buckets != h.buckets) {
      report("histogram " + name + ": fleet count=" + std::to_string(h.count) +
             " expected count=" + std::to_string(e.count) +
             " (or buckets differ)");
      continue;
    }
    if (std::abs(e.sum - h.sum) > epsilon * std::max(1.0, std::abs(e.sum))) {
      report("histogram " + name + ": fleet sum=" + detail::json_number(h.sum) +
             " expected sum=" + detail::json_number(e.sum));
    }
  }

  if (mismatches > kMaxReported) {
    out << "... and " << (mismatches - kMaxReported) << " more\n";
  }
  return out.str();
}

void TelemetryCollector::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  per_node_.clear();
  series_.clear();
  ingested_ = 0;
}

}  // namespace coda::obs
