#include "src/obs/metrics.h"

#include <algorithm>

#include "src/util/error.h"

namespace coda::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1) {
  require(!bounds_.empty(), "Histogram: needs at least one bucket bound");
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    require(bounds_[i - 1] < bounds_[i],
            "Histogram: bounds must be strictly increasing");
  }
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto index =
      static_cast<std::size_t>(std::distance(bounds_.begin(), it));
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.add(value);
}

double Histogram::quantile(double q) const {
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Snapshot the bucket counts once so the rank and the cumulative walk
  // agree even while other threads are observing.
  std::vector<std::uint64_t> counts(buckets_.size());
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;

  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += counts[i];
    if (static_cast<double>(cumulative) < rank) continue;
    if (i >= bounds_.size()) return bounds_.back();  // +inf bucket: clamp
    const double lower = (i == 0) ? 0.0 : bounds_[i - 1];
    const double upper = bounds_[i];
    const double fraction =
        (rank - before) / static_cast<double>(counts[i]);
    return lower + (upper - lower) * fraction;
  }
  return bounds_.back();
}

void Histogram::reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.reset();
}

std::vector<double> Histogram::exponential_bounds(double start, double factor,
                                                  std::size_t count) {
  require(start > 0.0 && factor > 1.0 && count > 0,
          "Histogram: bad exponential bound parameters");
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

std::vector<double> Histogram::default_time_bounds() {
  return exponential_bounds(1e-6, 4.0, 14);  // 1us .. ~67s
}

std::vector<double> Histogram::default_byte_bounds() {
  return exponential_bounds(64.0, 4.0, 10);  // 64B .. 16MB
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (bounds.empty()) bounds = Histogram::default_time_bounds();
    it = histograms_
             .emplace(name, std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter.reset();
  for (auto& [name, gauge] : gauges_) gauge.reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

std::vector<std::pair<std::string, std::uint64_t>>
MetricsRegistry::counter_values() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter.value());
  }
  return out;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::gauge_values()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.emplace_back(name, gauge.value());
  }
  return out;
}

std::vector<std::pair<std::string, const Histogram*>>
MetricsRegistry::histogram_views() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, const Histogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.emplace_back(name, histogram.get());
  }
  return out;
}

Counter& counter(const std::string& name) {
  return MetricsRegistry::instance().counter(name);
}

Gauge& gauge(const std::string& name) {
  return MetricsRegistry::instance().gauge(name);
}

Histogram& histogram(const std::string& name, std::vector<double> bounds) {
  return MetricsRegistry::instance().histogram(name, std::move(bounds));
}

}  // namespace coda::obs
