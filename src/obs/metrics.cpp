#include "src/obs/metrics.h"

#include <algorithm>

#include "src/util/error.h"

namespace coda::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1) {
  require(!bounds_.empty(), "Histogram: needs at least one bucket bound");
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    require(bounds_[i - 1] < bounds_[i],
            "Histogram: bounds must be strictly increasing");
  }
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto index =
      static_cast<std::size_t>(std::distance(bounds_.begin(), it));
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.add(value);
}

double quantile_from_buckets(const std::vector<double>& bounds,
                             const std::vector<std::uint64_t>& buckets,
                             double q) {
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  std::uint64_t total = 0;
  for (const std::uint64_t c : buckets) total += c;
  if (total == 0) return 0.0;

  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) < rank) continue;
    if (i >= bounds.size()) return bounds.back();  // +inf bucket: clamp
    const double lower = (i == 0) ? 0.0 : bounds[i - 1];
    const double upper = bounds[i];
    const double fraction =
        (rank - before) / static_cast<double>(buckets[i]);
    return lower + (upper - lower) * fraction;
  }
  return bounds.back();
}

double Histogram::quantile(double q) const {
  // Empty histogram: defined to return 0.0, explicitly, not NaN — an SLO
  // check like "p99 < 0.1" must stay monotone-safe before the first
  // observation, and NaN comparisons silently evaluate false. Pinned by
  // Histogram.EmptyQuantileIsZero.
  if (count() == 0) return 0.0;
  // Snapshot the bucket counts once so the rank and the cumulative walk
  // agree even while other threads are observing.
  std::vector<std::uint64_t> counts(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return quantile_from_buckets(bounds_, counts, q);
}

void Histogram::merge(const Histogram& other) {
  require(bounds_ == other.bounds_,
          "Histogram::merge: bucket bounds differ");
  std::uint64_t merged_count = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::uint64_t n =
        other.buckets_[i].load(std::memory_order_relaxed);
    if (n == 0) continue;
    buckets_[i].fetch_add(n, std::memory_order_relaxed);
    merged_count += n;
  }
  if (merged_count > 0) {
    count_.fetch_add(merged_count, std::memory_order_relaxed);
  }
  const double s = other.sum();
  if (s != 0.0) sum_.add(s);
}

void Histogram::reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.reset();
}

std::vector<double> Histogram::exponential_bounds(double start, double factor,
                                                  std::size_t count) {
  require(start > 0.0 && factor > 1.0 && count > 0,
          "Histogram: bad exponential bound parameters");
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

std::vector<double> Histogram::default_time_bounds() {
  return exponential_bounds(1e-6, 4.0, 14);  // 1us .. ~67s
}

std::vector<double> Histogram::default_byte_bounds() {
  return exponential_bounds(64.0, 4.0, 10);  // 64B .. 16MB
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (bounds.empty()) bounds = Histogram::default_time_bounds();
    it = histograms_
             .emplace(name, std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter.reset();
  for (auto& [name, gauge] : gauges_) gauge.reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

std::vector<std::pair<std::string, std::uint64_t>>
MetricsRegistry::counter_values() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter.value());
  }
  return out;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::gauge_values()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.emplace_back(name, gauge.value());
  }
  return out;
}

std::vector<std::pair<std::string, const Histogram*>>
MetricsRegistry::histogram_views() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, const Histogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.emplace_back(name, histogram.get());
  }
  return out;
}

std::optional<std::uint64_t> MetricsRegistry::find_counter(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  if (it == counters_.end()) return std::nullopt;
  return it->second.value();
}

std::optional<double> MetricsRegistry::find_gauge(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  if (it == gauges_.end()) return std::nullopt;
  return it->second.value();
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

Counter& counter(const std::string& name) {
  return MetricsRegistry::instance().counter(name);
}

Gauge& gauge(const std::string& name) {
  return MetricsRegistry::instance().gauge(name);
}

Histogram& histogram(const std::string& name, std::vector<double> bounds) {
  return MetricsRegistry::instance().histogram(name, std::move(bounds));
}

namespace {

// Shard table: name -> scope. Scopes are heap-allocated and never freed
// (same lifetime contract as the process-wide registry), so pointers
// cached by NodeScope installs and ScopedCounter handles stay valid
// across obs::reset_all().
struct ScopeTable {
  std::mutex mutex;
  std::map<std::string, std::unique_ptr<MetricScope>> scopes;
};

ScopeTable& scope_table() {
  static ScopeTable table;
  return table;
}

thread_local MetricScope* t_current_scope = nullptr;

}  // namespace

MetricScope& MetricScope::for_node(const std::string& node) {
  require(!node.empty(), "MetricScope: node name must be non-empty");
  auto& table = scope_table();
  std::lock_guard<std::mutex> lock(table.mutex);
  auto it = table.scopes.find(node);
  if (it == table.scopes.end()) {
    // new instead of make_unique: the constructor is private, and this
    // static member is the only creation path.
    it = table.scopes
             .emplace(node, std::unique_ptr<MetricScope>(new MetricScope(node)))
             .first;
  }
  return *it->second;
}

MetricScope* MetricScope::find(const std::string& node) {
  auto& table = scope_table();
  std::lock_guard<std::mutex> lock(table.mutex);
  const auto it = table.scopes.find(node);
  return it == table.scopes.end() ? nullptr : it->second.get();
}

std::vector<std::string> MetricScope::nodes() {
  auto& table = scope_table();
  std::lock_guard<std::mutex> lock(table.mutex);
  std::vector<std::string> out;
  out.reserve(table.scopes.size());
  for (const auto& [name, scope] : table.scopes) out.push_back(name);
  return out;  // std::map iteration: already sorted
}

void MetricScope::reset_values() {
  auto& table = scope_table();
  std::lock_guard<std::mutex> lock(table.mutex);
  for (auto& [name, scope] : table.scopes) scope->registry().reset();
}

MetricScope* MetricScope::current() { return t_current_scope; }

MetricScope* MetricScope::install(MetricScope* scope) {
  MetricScope* previous = t_current_scope;
  t_current_scope = scope;
  return previous;
}

void count_scoped(const std::string& name, std::uint64_t n) {
  MetricsRegistry::instance().counter(name).inc(n);
  if (t_current_scope != nullptr) t_current_scope->counter(name).inc(n);
}

void observe_scoped(const std::string& name, double value,
                    std::vector<double> bounds) {
  MetricsRegistry::instance().histogram(name, bounds).observe(value);
  if (t_current_scope != nullptr) {
    t_current_scope->histogram(name, std::move(bounds)).observe(value);
  }
}

namespace {

struct InstanceIdTable {
  std::mutex mutex;
  std::map<std::string, std::uint64_t> next;
};

InstanceIdTable& instance_ids() {
  static InstanceIdTable table;
  return table;
}

}  // namespace

std::uint64_t next_instance_id(const std::string& family) {
  auto& table = instance_ids();
  std::lock_guard<std::mutex> lock(table.mutex);
  return table.next[family]++;
}

void reset_instance_ids() {
  auto& table = instance_ids();
  std::lock_guard<std::mutex> lock(table.mutex);
  table.next.clear();
}

}  // namespace coda::obs
