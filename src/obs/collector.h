// Fleet telemetry collector (DESIGN.md §12): the in-memory sink behind
// the "telemetry" SimNet node. Nodes ship MetricsSnapshot *deltas*
// (src/dist/telemetry.h carries them over the simulated network, subject
// to the fault model); the collector folds each delta into a per-node
// accumulated snapshot and answers fleet queries — merged aggregates,
// per-node/per-metric time series and rates, and top-k-nodes-by-metric.
//
// Thread safety: every method takes the collector's mutex. Ingest happens
// from client worker threads; queries typically run after a bench/test
// joins its pool, but concurrent queries are safe (they return copies).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/timeseries.h"

namespace coda::obs {

class TelemetryCollector {
 public:
  /// `series_capacity` bounds every per-metric ring (TimeSeries).
  explicit TelemetryCollector(std::size_t series_capacity = 256);

  /// Registers a metric whose absolute value is sampled into a time
  /// series (per node, and fleet-wide) on every ingest that touches the
  /// reporting node. Counters sample their value; gauges likewise;
  /// histograms sample their count.
  void track(const std::string& metric);
  std::vector<std::string> tracked() const;

  /// Folds one report into `node`'s accumulated snapshot (see
  /// apply_snapshot_delta for the delta semantics) and samples tracked
  /// series at logical time `t`. Increments `telemetry.reports.ingested`.
  void ingest(const std::string& node, double t, const MetricsSnapshot& delta);

  /// Nodes that have reported at least once, sorted.
  std::vector<std::string> nodes() const;
  /// Reports folded in so far.
  std::uint64_t reports_ingested() const;

  /// Copy of one node's accumulated snapshot (empty if unknown).
  MetricsSnapshot node_snapshot(const std::string& node) const;
  /// Merge of every node's snapshot — the fleet aggregate.
  MetricsSnapshot fleet() const;

  /// Copy of a tracked series ("" node = the fleet-wide series);
  /// std::nullopt when the metric is untracked or the node unknown.
  std::optional<TimeSeries> series(const std::string& node,
                                   const std::string& metric) const;
  /// rate_per_second() of the same series (0 when absent).
  double rate(const std::string& node, const std::string& metric) const;

  /// The k nodes with the largest value of `metric`, descending (ties
  /// break by node name). Probes counters, then gauges, then histogram
  /// counts; nodes without the metric rank as 0.
  std::vector<std::pair<std::string, double>> top_k(const std::string& metric,
                                                    std::size_t k) const;

  /// One row of the fleet hot-path table: a profiled region summed over
  /// every reporting node, reconstructed from the published
  /// prof.<region>.calls / prof.<region>.self_ns counters (ISSUE 9).
  struct HotPath {
    std::string region;
    std::uint64_t calls = 0;
    double self_seconds = 0.0;
  };

  /// Top `k` profiled regions in the fleet aggregate, ranked by
  /// (calls desc, region asc) — the profiler's deterministic hot-path
  /// ordering; self time is informational, never the sort key. Empty when
  /// no node has published profile counters.
  std::vector<HotPath> hot_paths(std::size_t k) const;

  /// "" when the fleet aggregate reproduces `expected` (same keys, equal
  /// integer state bit-for-bit, float state within `epsilon`); otherwise a
  /// human-readable description of the first few divergences. Only keys
  /// present in the fleet aggregate are compared — `expected` may carry
  /// extra (unscoped) families.
  std::string describe_divergence(const MetricsSnapshot& expected,
                                  double epsilon = 1e-9) const;

  /// Drops all accumulated state and series (tracked names survive).
  void clear();

 private:
  /// The sampled value of `metric` in `snap` (counter, gauge, or
  /// histogram count), if present.
  static std::optional<double> probe(const MetricsSnapshot& snap,
                                     const std::string& metric);
  void sample_tracked_locked(const std::string& node, double t);

  mutable std::mutex mutex_;
  std::size_t series_capacity_;
  std::vector<std::string> tracked_;
  std::map<std::string, MetricsSnapshot> per_node_;
  // (node, metric) -> series; node "" holds the fleet-wide series.
  std::map<std::pair<std::string, std::string>, TimeSeries> series_;
  std::uint64_t ingested_ = 0;
};

}  // namespace coda::obs
