#include "src/obs/timeseries.h"

#include <algorithm>

#include "src/util/error.h"

namespace coda::obs {

TimeSeries::TimeSeries(std::size_t capacity) : capacity_(capacity) {
  require(capacity_ > 0, "TimeSeries: capacity must be positive");
  ring_.reserve(capacity_);
}

void TimeSeries::sample(double t, double value) {
  if (ring_.size() < capacity_) {
    ring_.push_back(Point{t, value});
  } else {
    ring_[next_slot_] = Point{t, value};
    next_slot_ = (next_slot_ + 1) % capacity_;
  }
  ++total_;
}

std::vector<TimeSeries::Point> TimeSeries::points() const {
  std::vector<Point> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
    return out;
  }
  // Full ring: next_slot_ is the oldest sample.
  for (std::size_t i = 0; i < capacity_; ++i) {
    out.push_back(ring_[(next_slot_ + i) % capacity_]);
  }
  return out;
}

TimeSeries::Point TimeSeries::latest() const {
  if (ring_.empty()) return Point{};
  if (ring_.size() < capacity_) return ring_.back();
  return ring_[(next_slot_ + capacity_ - 1) % capacity_];
}

double TimeSeries::rate_per_second() const {
  if (ring_.size() < 2) return 0.0;
  const auto pts = points();
  const double dt = pts.back().t - pts.front().t;
  if (dt <= 0.0) return 0.0;
  return (pts.back().value - pts.front().value) / dt;
}

void TimeSeries::clear() {
  ring_.clear();
  next_slot_ = 0;
  total_ = 0;
}

void MetricsSnapshot::merge_from(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, value] : other.gauges) gauges[name] += value;
  for (const auto& [name, h] : other.histograms) {
    auto it = histograms.find(name);
    if (it == histograms.end()) {
      histograms.emplace(name, h);
      continue;
    }
    HistogramSnapshot& mine = it->second;
    require(mine.bounds == h.bounds,
            "MetricsSnapshot::merge_from: histogram bounds differ for '" +
                name + "'");
    for (std::size_t i = 0; i < mine.buckets.size(); ++i) {
      mine.buckets[i] += h.buckets[i];
    }
    mine.count += h.count;
    mine.sum += h.sum;
  }
}

namespace {

constexpr std::uint32_t kSnapshotVersion = 1;

}  // namespace

Bytes MetricsSnapshot::serialize() const {
  ByteWriter w;
  w.write_u32(kSnapshotVersion);
  w.write_u64(counters.size());
  for (const auto& [name, value] : counters) {
    w.write_string(name);
    w.write_u64(value);
  }
  w.write_u64(gauges.size());
  for (const auto& [name, value] : gauges) {
    w.write_string(name);
    w.write_double(value);
  }
  w.write_u64(histograms.size());
  for (const auto& [name, h] : histograms) {
    w.write_string(name);
    w.write_doubles(h.bounds);
    w.write_u64(h.buckets.size());
    for (const std::uint64_t b : h.buckets) w.write_u64(b);
    w.write_u64(h.count);
    w.write_double(h.sum);
  }
  return w.take();
}

MetricsSnapshot MetricsSnapshot::deserialize(const Bytes& buffer) {
  ByteReader r(buffer);
  const std::uint32_t version = r.read_u32();
  if (version != kSnapshotVersion) {
    throw DecodeError("MetricsSnapshot: unknown wire version " +
                      std::to_string(version));
  }
  MetricsSnapshot out;
  const std::uint64_t n_counters = r.read_u64();
  for (std::uint64_t i = 0; i < n_counters; ++i) {
    const std::string name = r.read_string();
    out.counters[name] = r.read_u64();
  }
  const std::uint64_t n_gauges = r.read_u64();
  for (std::uint64_t i = 0; i < n_gauges; ++i) {
    const std::string name = r.read_string();
    out.gauges[name] = r.read_double();
  }
  const std::uint64_t n_histograms = r.read_u64();
  for (std::uint64_t i = 0; i < n_histograms; ++i) {
    const std::string name = r.read_string();
    HistogramSnapshot h;
    h.bounds = r.read_doubles();
    const std::uint64_t n_buckets = r.read_u64();
    // A well-formed histogram has bounds.size() + 1 buckets; reject other
    // shapes before the bucket loop can be driven by a hostile length.
    if (n_buckets != h.bounds.size() + 1) {
      throw DecodeError("MetricsSnapshot: histogram bucket/bound mismatch");
    }
    h.buckets.reserve(n_buckets);
    for (std::uint64_t b = 0; b < n_buckets; ++b) {
      h.buckets.push_back(r.read_u64());
    }
    h.count = r.read_u64();
    h.sum = r.read_double();
    out.histograms.emplace(name, std::move(h));
  }
  return out;
}

MetricsSnapshot snapshot_registry(const MetricsRegistry& registry) {
  MetricsSnapshot out;
  for (const auto& [name, value] : registry.counter_values()) {
    out.counters[name] = value;
  }
  for (const auto& [name, value] : registry.gauge_values()) {
    out.gauges[name] = value;
  }
  for (const auto& [name, h] : registry.histogram_views()) {
    HistogramSnapshot snap;
    snap.bounds = h->bounds();
    snap.buckets.reserve(h->n_buckets());
    for (std::size_t i = 0; i < h->n_buckets(); ++i) {
      snap.buckets.push_back(h->bucket_count(i));
    }
    snap.count = h->count();
    snap.sum = h->sum();
    out.histograms.emplace(name, std::move(snap));
  }
  return out;
}

MetricsSnapshot snapshot_delta(const MetricsSnapshot& base,
                               const MetricsSnapshot& current) {
  MetricsSnapshot delta;
  for (const auto& [name, value] : current.counters) {
    const auto it = base.counters.find(name);
    const std::uint64_t before = it == base.counters.end() ? 0 : it->second;
    // A counter that moved backwards means the registry was reset between
    // snapshots; re-ship the absolute value (fresh-registration
    // semantics) rather than underflowing.
    const std::uint64_t inc = value >= before ? value - before : value;
    if (inc != 0) delta.counters[name] = inc;
  }
  for (const auto& [name, value] : current.gauges) {
    const auto it = base.gauges.find(name);
    if (it == base.gauges.end() || it->second != value) {
      delta.gauges[name] = value;  // absolute
    }
  }
  for (const auto& [name, h] : current.histograms) {
    const auto it = base.histograms.find(name);
    if (it == base.histograms.end() || it->second.bounds != h.bounds) {
      if (h.count != 0) delta.histograms[name] = h;  // whole histogram
      continue;
    }
    const HistogramSnapshot& before = it->second;
    if (h.count == before.count && h.sum == before.sum) continue;
    HistogramSnapshot d;
    d.bounds = h.bounds;
    d.buckets.reserve(h.buckets.size());
    bool reset = h.count < before.count;
    for (std::size_t i = 0; i < h.buckets.size() && !reset; ++i) {
      reset = h.buckets[i] < before.buckets[i];
    }
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      d.buckets.push_back(reset ? h.buckets[i]
                                : h.buckets[i] - before.buckets[i]);
    }
    d.count = reset ? h.count : h.count - before.count;
    d.sum = h.sum;  // absolute (replace-on-apply)
    delta.histograms[name] = std::move(d);
  }
  return delta;
}

void apply_snapshot_delta(MetricsSnapshot& base,
                          const MetricsSnapshot& delta) {
  for (const auto& [name, inc] : delta.counters) base.counters[name] += inc;
  for (const auto& [name, value] : delta.gauges) base.gauges[name] = value;
  for (const auto& [name, d] : delta.histograms) {
    auto it = base.histograms.find(name);
    if (it == base.histograms.end() || it->second.bounds != d.bounds) {
      base.histograms[name] = d;
      continue;
    }
    HistogramSnapshot& mine = it->second;
    for (std::size_t i = 0; i < mine.buckets.size(); ++i) {
      mine.buckets[i] += d.buckets[i];
    }
    mine.count += d.count;
    mine.sum = d.sum;  // absolute
  }
}

}  // namespace coda::obs
