// Causal span tracer (observability layer): RAII ScopedSpan records name,
// start/duration, and parent linkage. Within one thread, nesting is
// automatic (a thread-local current-span id); across threads and across
// the simulated network, a TraceContext {trace_id, parent_span_id} is
// carried explicitly (thread-pool tasks via ContextScope, SimNet messages
// via a message header), so one cooperative search yields one connected
// span tree per client — client compute, network transfers, repository
// work and retries all reachable from the root span.
//
// Dual clocks (DESIGN.md §10): compute spans are timestamped on the
// steady clock, network spans on the SimNet logical clock. Each trace may
// record one alignment anchor (a steady/logical instant observed
// together) so exporters can place both domains on a single timeline.
//
// Finished spans land in a fixed-size ring buffer — old spans are
// overwritten (counted in `obs.trace.dropped`), recording never blocks on
// consumers and never allocates unboundedly.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace coda::obs {

class MetricScope;  // metrics.h; NodeScope/ContextScope install one

/// Which clock a span's start/duration were measured on.
enum class ClockDomain : std::uint8_t {
  kSteady = 0,   ///< process steady clock, seconds since the tracer epoch
  kLogical = 1,  ///< SimNet logical clock, simulated seconds
};

/// Causal context carried across threads and (simulated) network message
/// headers. A zero trace_id means "no trace": spans started under it open
/// a fresh trace.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span_id = 0;

  bool valid() const { return trace_id != 0; }
};

/// A finished span.
struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent_id = 0;  ///< 0 = root span
  std::uint64_t trace_id = 0;   ///< spans with equal trace_id form one tree
  std::string name;
  /// Logical node the work ran on (SimNet node name); "" = the ambient
  /// process. Exporters map nodes to processes (pids).
  std::string node;
  std::uint64_t thread = 0;  ///< hashed std::thread::id (steady spans)
  ClockDomain clock = ClockDomain::kSteady;
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
  std::vector<std::pair<std::string, std::string>> tags;
};

/// Ring-buffer sink for finished spans.
class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 65536);

  /// The process-wide tracer used by instrumentation.
  static Tracer& instance();

  std::uint64_t next_id() {
    return id_source_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  std::uint64_t next_trace_id() {
    return trace_source_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Seconds since this tracer's epoch (steady clock).
  double now_seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
  }

  void record(SpanRecord span);

  /// Allocates an id and records an already-finished span in one call —
  /// used for logical-clock spans (network transfers) whose lifetime is
  /// not a C++ scope. Returns the span's id.
  std::uint64_t record_span(
      std::string name, const TraceContext& parent, std::string node,
      ClockDomain clock, double start_seconds, double duration_seconds,
      std::vector<std::pair<std::string, std::string>> tags = {});

  /// Records the trace's steady/logical alignment anchor: a pair of
  /// timestamps observed at the same instant. First write per trace wins.
  struct Anchor {
    double steady_seconds = 0.0;
    double logical_seconds = 0.0;
  };
  void anchor(std::uint64_t trace_id, double steady_seconds,
              double logical_seconds);
  std::map<std::uint64_t, Anchor> anchors() const;

  /// Retained spans, oldest first.
  std::vector<SpanRecord> snapshot() const;

  /// Total spans ever recorded / overwritten by ring wrap-around.
  std::uint64_t recorded() const;
  std::uint64_t dropped() const;

  /// Clears retained spans, anchors, and the id/trace-id sources (so
  /// seed-deterministic tests replay identical ids). Only safe while no
  /// spans are live on other threads.
  void clear();

  /// The calling thread's innermost live span id (0 = none). ScopedSpan
  /// maintains this; exposed so manual instrumentation can interoperate.
  static std::uint64_t current_span();
  static void set_current_span(std::uint64_t id);

  /// The calling thread's trace id (0 = none) and ambient context.
  static std::uint64_t current_trace();
  static void set_current_trace(std::uint64_t id);
  static TraceContext current_context() {
    return TraceContext{current_trace(), current_span()};
  }

  /// The calling thread's node attribution ("" = ambient process).
  /// NodeScope maintains this.
  static const std::string& current_node();

 private:
  friend class NodeScope;

  const std::size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<std::uint64_t> id_source_{0};
  std::atomic<std::uint64_t> trace_source_{0};
  mutable std::mutex mutex_;
  std::vector<SpanRecord> ring_;
  std::size_t next_slot_ = 0;
  std::uint64_t total_recorded_ = 0;
  std::map<std::uint64_t, Anchor> anchors_;
};

/// RAII span: opens on construction, records on destruction. Nested
/// ScopedSpans on the same thread are parented automatically; the
/// two-argument form parents under an explicit (possibly remote) context
/// instead. A span opened with no ambient trace starts a new trace.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string name, Tracer& tracer = Tracer::instance());
  ScopedSpan(std::string name, const TraceContext& parent,
             Tracer& tracer = Tracer::instance());
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  std::uint64_t id() const { return id_; }
  std::uint64_t trace_id() const { return trace_id_; }

  /// Context to hand to children (tasks, messages) of this span.
  TraceContext context() const { return TraceContext{trace_id_, id_}; }

  /// Attaches a key/value tag to the record.
  void tag(std::string key, std::string value);

  /// Overrides the node attribution (default: the thread's NodeScope).
  void set_node(std::string node);

 private:
  Tracer& tracer_;
  std::string name_;
  std::string node_;
  std::uint64_t id_;
  std::uint64_t parent_id_;
  std::uint64_t trace_id_;
  std::uint64_t prev_trace_;
  double start_seconds_;
  std::vector<std::pair<std::string, std::string>> tags_;
};

/// RAII cross-thread continuation: adopts `ctx` (and optionally a node
/// attribution) as the calling thread's ambient trace context, restoring
/// the previous state on destruction. Used when handing work to a thread
/// pool or timer wheel so the task's spans stay parented under the
/// submitting span.
class ContextScope {
 public:
  explicit ContextScope(const TraceContext& ctx);
  ContextScope(const TraceContext& ctx, std::string node);
  ~ContextScope();

  ContextScope(const ContextScope&) = delete;
  ContextScope& operator=(const ContextScope&) = delete;

 private:
  std::uint64_t prev_trace_;
  std::uint64_t prev_span_;
  bool node_set_ = false;
  std::string prev_node_;
  MetricScope* prev_scope_ = nullptr;
};

/// RAII node attribution: spans and events recorded by this thread while
/// the scope is live carry `node` (e.g. the SimNet node name of the
/// simulated client driving this thread), and the node's MetricScope
/// becomes the thread's ambient shard for count_scoped()/observe_scoped().
class NodeScope {
 public:
  explicit NodeScope(std::string node);
  ~NodeScope();

  NodeScope(const NodeScope&) = delete;
  NodeScope& operator=(const NodeScope&) = delete;

 private:
  std::string prev_;
  MetricScope* prev_scope_ = nullptr;
};

}  // namespace coda::obs
