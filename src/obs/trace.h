// Lightweight span tracer (observability layer): RAII ScopedSpan records
// name, steady-clock start/duration, and parent linkage (a thread-local
// current-span id, so nested scopes on one thread form a tree without any
// plumbing through call signatures). Finished spans land in a fixed-size
// ring buffer — old spans are overwritten, recording never blocks on
// consumers and never allocates unboundedly.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace coda::obs {

/// A finished span. Times are seconds since the tracer's epoch
/// (construction), measured on the steady clock.
struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent_id = 0;  ///< 0 = root span
  std::string name;
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
};

/// Ring-buffer sink for finished spans.
class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 4096);

  /// The process-wide tracer used by instrumentation.
  static Tracer& instance();

  std::uint64_t next_id() {
    return id_source_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Seconds since this tracer's epoch (steady clock).
  double now_seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
  }

  void record(SpanRecord span);

  /// Retained spans, oldest first.
  std::vector<SpanRecord> snapshot() const;

  /// Total spans ever recorded / overwritten by ring wrap-around.
  std::uint64_t recorded() const;
  std::uint64_t dropped() const;

  void clear();

  /// The calling thread's innermost live span id (0 = none). ScopedSpan
  /// maintains this; exposed so manual instrumentation can interoperate.
  static std::uint64_t current_span();
  static void set_current_span(std::uint64_t id);

 private:
  const std::size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<std::uint64_t> id_source_{0};
  mutable std::mutex mutex_;
  std::vector<SpanRecord> ring_;
  std::size_t next_slot_ = 0;
  std::uint64_t total_recorded_ = 0;
};

/// RAII span: opens on construction, records on destruction. Nested
/// ScopedSpans on the same thread are parented automatically.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string name, Tracer& tracer = Tracer::instance());
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  std::uint64_t id() const { return id_; }

 private:
  Tracer& tracer_;
  std::string name_;
  std::uint64_t id_;
  std::uint64_t parent_id_;
  double start_seconds_;
};

}  // namespace coda::obs
