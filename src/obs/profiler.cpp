#include "src/obs/profiler.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <deque>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/error.h"

namespace coda::obs::prof {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// ---------------------------------------------------------------------------
// Region interning. Names live in a deque so region_name() references stay
// valid forever; the mutex is only taken at intern time (once per call
// site, via the PROF_SCOPE function-local static) and at lookup.

struct Regions {
  std::mutex mutex;
  std::unordered_map<std::string, RegionId> ids;
  std::deque<std::string> names;  // index == RegionId
};

Regions& regions() {
  static Regions* r = new Regions();  // leaked: outlives arena teardown
  return *r;
}

// ---------------------------------------------------------------------------
// Per-thread call-path tries. Every PathNode belongs to exactly one arena
// and is *mutated* only by that arena's owning thread; the atomics exist
// so exporters on other threads can read without locks:
//   * calls / total_ns: owner does relaxed load+store (no RMW needed —
//     single writer), readers load relaxed. Counts are monotone, so a
//     racy read is merely slightly stale, never torn.
//   * first_child / the arena's first_root: owner publishes a fully
//     constructed node with store-release; readers walk with
//     load-acquire. next_sibling is written before the release store and
//     immutable afterwards.
// pub_calls / pub_self_ns are the publish baselines — touched only under
// the global publish mutex, never by the owner.

struct PathNode {
  PathNode(RegionId r, std::string node, PathNode* p)
      : region(r), node_name(std::move(node)), parent(p) {}

  const RegionId region;
  const std::string node_name;  // roots: ambient node attribution; else ""
  PathNode* const parent;       // nullptr for roots

  std::atomic<std::uint64_t> calls{0};
  std::atomic<std::uint64_t> total_ns{0};

  std::atomic<PathNode*> first_child{nullptr};
  PathNode* next_sibling = nullptr;

  std::uint64_t pub_calls = 0;
  std::uint64_t pub_self_ns = 0;
};

struct ThreadArena {
  std::atomic<PathNode*> first_root{nullptr};
  // Owner-private: root lookup by (node attribution, region). Exporters
  // never touch it — they walk the atomic links instead.
  std::map<std::pair<std::string, RegionId>, PathNode*> root_index;
  std::deque<PathNode> owned;  // owner-only append; nodes never move
};

struct Arenas {
  std::mutex mutex;           // guards the arena list and publishing
  std::deque<ThreadArena> list;  // arenas live for the process
};

Arenas& arenas() {
  static Arenas* a = new Arenas();  // leaked: threads may outlive main
  return *a;
}

struct ThreadState {
  ThreadArena* arena = nullptr;
  PathNode* current = nullptr;
};

thread_local ThreadState t_state;

ThreadArena& acquire_arena() {
  if (t_state.arena == nullptr) {
    Arenas& a = arenas();
    std::lock_guard<std::mutex> lock(a.mutex);
    a.list.emplace_back();
    t_state.arena = &a.list.back();
  }
  return *t_state.arena;
}

PathNode* find_child(PathNode* parent, RegionId region) {
  for (PathNode* c = parent->first_child.load(std::memory_order_acquire);
       c != nullptr; c = c->next_sibling) {
    if (c->region == region) return c;
  }
  return nullptr;
}

// Owner-only: appends a child and publishes it for concurrent readers.
PathNode* add_child(ThreadArena& arena, PathNode* parent, RegionId region) {
  arena.owned.emplace_back(region, std::string(), parent);
  PathNode* node = &arena.owned.back();
  node->next_sibling = parent->first_child.load(std::memory_order_relaxed);
  parent->first_child.store(node, std::memory_order_release);
  return node;
}

PathNode* root_for(ThreadArena& arena, const std::string& node_name,
                   RegionId region) {
  const auto key = std::make_pair(node_name, region);
  const auto it = arena.root_index.find(key);
  if (it != arena.root_index.end()) return it->second;
  arena.owned.emplace_back(region, node_name, nullptr);
  PathNode* node = &arena.owned.back();
  node->next_sibling = arena.first_root.load(std::memory_order_relaxed);
  arena.first_root.store(node, std::memory_order_release);
  arena.root_index.emplace(key, node);
  return node;
}

// ---------------------------------------------------------------------------
// Export-side tree walking. Snapshots are approximate under concurrent
// mutation (a racing scope lands wholly in the next snapshot); at quiesced
// points (bench export, fleet flush, test assertions) they are exact.

template <typename Fn>
void for_each_node(const ThreadArena& arena, Fn&& fn) {
  // Iterative DFS; `fn(root, node)` for every published node.
  for (PathNode* root = arena.first_root.load(std::memory_order_acquire);
       root != nullptr; root = root->next_sibling) {
    std::vector<PathNode*> stack{root};
    while (!stack.empty()) {
      PathNode* node = stack.back();
      stack.pop_back();
      fn(root, node);
      for (PathNode* c = node->first_child.load(std::memory_order_acquire);
           c != nullptr; c = c->next_sibling) {
        stack.push_back(c);
      }
    }
  }
}

std::uint64_t children_total_ns(const PathNode& node) {
  std::uint64_t sum = 0;
  for (PathNode* c = node.first_child.load(std::memory_order_acquire);
       c != nullptr; c = c->next_sibling) {
    sum += c->total_ns.load(std::memory_order_relaxed);
  }
  return sum;
}

// Self time of one PathNode, clamped at zero: while a scope is live its
// time has not yet landed in the parent's total, so a mid-flight snapshot
// can transiently observe children > parent.
std::uint64_t self_ns_of(const PathNode& node) {
  const std::uint64_t total = node.total_ns.load(std::memory_order_relaxed);
  const std::uint64_t children = children_total_ns(node);
  return total > children ? total - children : 0;
}

std::vector<std::string> path_names(const PathNode& leaf) {
  std::vector<std::string> names;
  for (const PathNode* n = &leaf; n != nullptr; n = n->parent) {
    names.push_back(region_name(n->region));
  }
  std::reverse(names.begin(), names.end());
  return names;
}

std::string format_seconds(double s) {
  char buf[32];
  if (s >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3fs", s);
  } else if (s >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.3fms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fus", s * 1e6);
  }
  return buf;
}

}  // namespace

RegionId intern(const std::string& name) {
  require(!name.empty(), "prof::intern: region name must be non-empty");
  Regions& r = regions();
  std::lock_guard<std::mutex> lock(r.mutex);
  const auto it = r.ids.find(name);
  if (it != r.ids.end()) return it->second;
  const RegionId id = static_cast<RegionId>(r.names.size());
  r.names.push_back(name);
  r.ids.emplace(name, id);
  return id;
}

const std::string& region_name(RegionId id) {
  Regions& r = regions();
  std::lock_guard<std::mutex> lock(r.mutex);
  require(id < r.names.size(), "prof::region_name: unknown region id");
  return r.names[id];
}

Scope::Scope(RegionId region) {
  ThreadArena& arena = acquire_arena();
  PathNode* parent = t_state.current;
  PathNode* node;
  if (parent == nullptr) {
    node = root_for(arena, Tracer::current_node(), region);
  } else {
    node = find_child(parent, region);
    if (node == nullptr) node = add_child(arena, parent, region);
  }
  node_ = node;
  prev_ = parent;
  t_state.current = node;
  static auto& scopes = obs::counter("prof.scopes");
  scopes.inc();
  start_ns_ = now_ns();
}

Scope::~Scope() {
  const std::uint64_t elapsed = now_ns() - start_ns_;
  auto* node = static_cast<PathNode*>(node_);
  // Single-writer accumulate: relaxed load+store, no RMW on the hot path.
  node->calls.store(node->calls.load(std::memory_order_relaxed) + 1,
                    std::memory_order_relaxed);
  node->total_ns.store(
      node->total_ns.load(std::memory_order_relaxed) + elapsed,
      std::memory_order_relaxed);
  t_state.current = static_cast<PathNode*>(prev_);
}

std::vector<PathStat> merged_paths() {
  struct Agg {
    std::uint64_t calls = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t self_ns = 0;
  };
  // std::map keeps the (node, path) ordering contract for free.
  std::map<std::pair<std::string, std::vector<std::string>>, Agg> merged;
  Arenas& a = arenas();
  std::lock_guard<std::mutex> lock(a.mutex);
  for (const ThreadArena& arena : a.list) {
    for_each_node(arena, [&merged](PathNode* root, PathNode* node) {
      const std::uint64_t calls =
          node->calls.load(std::memory_order_relaxed);
      if (calls == 0) return;
      Agg& agg = merged[{root->node_name, path_names(*node)}];
      agg.calls += calls;
      agg.total_ns += node->total_ns.load(std::memory_order_relaxed);
      agg.self_ns += self_ns_of(*node);
    });
  }
  std::vector<PathStat> out;
  out.reserve(merged.size());
  for (const auto& [key, agg] : merged) {
    PathStat stat;
    stat.node = key.first;
    stat.path = key.second;
    stat.calls = agg.calls;
    stat.total_ns = agg.total_ns;
    stat.self_ns = agg.self_ns;
    out.push_back(std::move(stat));
  }
  return out;
}

std::vector<RegionStat> region_table() {
  std::map<std::string, RegionStat> by_name;
  for (const PathStat& path : merged_paths()) {
    RegionStat& stat = by_name[path.path.back()];
    stat.name = path.path.back();
    stat.calls += path.calls;
    stat.total_ns += path.total_ns;
    stat.self_ns += path.self_ns;
  }
  std::vector<RegionStat> out;
  out.reserve(by_name.size());
  for (auto& [name, stat] : by_name) out.push_back(std::move(stat));
  std::sort(out.begin(), out.end(),
            [](const RegionStat& a, const RegionStat& b) {
              if (a.calls != b.calls) return a.calls > b.calls;
              return a.name < b.name;
            });
  return out;
}

std::string folded() {
  std::ostringstream os;
  for (const PathStat& path : merged_paths()) {
    bool first = true;
    if (!path.node.empty()) {
      os << path.node;
      first = false;
    }
    for (const std::string& frame : path.path) {
      if (!first) os << ';';
      os << frame;
      first = false;
    }
    os << ' ' << path.self_ns << '\n';
  }
  return os.str();
}

void write_folded(const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw Error("prof::write_folded: cannot open " + path);
  out << folded();
  if (!out) throw Error("prof::write_folded: write failed for " + path);
}

std::string report(std::size_t max_rows) {
  const std::vector<RegionStat> table = region_table();
  std::ostringstream os;
  os << "== coda_top: hot regions (calls desc) ==\n";
  if (table.empty()) {
    os << "  (no profiled regions)\n";
  }
  char line[160];
  std::snprintf(line, sizeof(line), "  %-28s %12s %12s %12s\n", "region",
                "calls", "self", "total");
  os << line;
  std::size_t rows = 0;
  for (const RegionStat& stat : table) {
    if (rows++ == max_rows) {
      os << "  ... (" << (table.size() - max_rows) << " more)\n";
      break;
    }
    std::snprintf(line, sizeof(line), "  %-28s %12llu %12s %12s\n",
                  stat.name.c_str(),
                  static_cast<unsigned long long>(stat.calls),
                  format_seconds(stat.self_ns * 1e-9).c_str(),
                  format_seconds(stat.total_ns * 1e-9).c_str());
    os << line;
  }
  // Derived FLOP rate (ISSUE 9): the GEMM kernel publishes flop counts
  // and per-call seconds; no PROF_SCOPE sits inside the kernel itself.
  const auto& reg = MetricsRegistry::instance();
  const auto flops = reg.find_counter("kernel.gemm.flops");
  const Histogram* seconds = reg.find_histogram("kernel.gemm.seconds");
  if (flops && *flops > 0 && seconds != nullptr && seconds->sum() > 0.0) {
    std::snprintf(line, sizeof(line),
                  "  kernel.gemm: %.2f GF/s (%llu flops / %s)\n",
                  static_cast<double>(*flops) / seconds->sum() * 1e-9,
                  static_cast<unsigned long long>(*flops),
                  format_seconds(seconds->sum()).c_str());
    os << line;
  }
  return os.str();
}

void publish_node(const std::string& node) {
  if (node.empty()) return;
  struct Delta {
    std::uint64_t calls = 0;
    std::uint64_t self_ns = 0;
  };
  std::map<std::string, Delta> deltas;
  Arenas& a = arenas();
  std::lock_guard<std::mutex> lock(a.mutex);
  for (ThreadArena& arena : a.list) {
    for_each_node(arena, [&deltas, &node](PathNode* root, PathNode* n) {
      if (root->node_name != node) return;
      const std::uint64_t calls = n->calls.load(std::memory_order_relaxed);
      const std::uint64_t self = self_ns_of(*n);
      Delta& d = deltas[region_name(n->region)];
      if (calls > n->pub_calls) d.calls += calls - n->pub_calls;
      if (self > n->pub_self_ns) d.self_ns += self - n->pub_self_ns;
      n->pub_calls = calls;
      n->pub_self_ns = self;
    });
  }
  if (deltas.empty()) return;
  // Equal increments on the shard and the process-wide registry keep the
  // telemetry invariant (global == sum of shards) that
  // TelemetryCollector::describe_divergence() checks.
  MetricScope& scope = MetricScope::for_node(node);
  for (const auto& [region, d] : deltas) {
    if (d.calls > 0) {
      obs::counter("prof." + region + ".calls").inc(d.calls);
      scope.counter("prof." + region + ".calls").inc(d.calls);
    }
    if (d.self_ns > 0) {
      obs::counter("prof." + region + ".self_ns").inc(d.self_ns);
      scope.counter("prof." + region + ".self_ns").inc(d.self_ns);
    }
  }
}

void publish_all() {
  std::vector<std::string> nodes;
  {
    Arenas& a = arenas();
    std::lock_guard<std::mutex> lock(a.mutex);
    for (const ThreadArena& arena : a.list) {
      for (PathNode* root = arena.first_root.load(std::memory_order_acquire);
           root != nullptr; root = root->next_sibling) {
        if (root->node_name.empty()) continue;
        if (root->calls.load(std::memory_order_relaxed) == 0 &&
            root->first_child.load(std::memory_order_acquire) == nullptr) {
          continue;
        }
        nodes.push_back(root->node_name);
      }
    }
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  for (const std::string& node : nodes) publish_node(node);
}

bool empty() {
  Arenas& a = arenas();
  std::lock_guard<std::mutex> lock(a.mutex);
  for (const ThreadArena& arena : a.list) {
    bool any = false;
    for_each_node(arena, [&any](PathNode*, PathNode* node) {
      if (node->calls.load(std::memory_order_relaxed) > 0) any = true;
    });
    if (any) return false;
  }
  return true;
}

void reset() {
  Arenas& a = arenas();
  std::lock_guard<std::mutex> lock(a.mutex);
  for (ThreadArena& arena : a.list) {
    for_each_node(arena, [](PathNode*, PathNode* node) {
      node->calls.store(0, std::memory_order_relaxed);
      node->total_ns.store(0, std::memory_order_relaxed);
      node->pub_calls = 0;
      node->pub_self_ns = 0;
    });
  }
}

}  // namespace coda::obs::prof
