// Per-candidate cost attribution (observability layer): the evaluation
// engine reports, per root→leaf pipeline path, how many folds ran, how
// much compute time they took, how the prefix cache behaved, and whether
// the candidate was served from the cooperative result cache. The rollup
// lands in snapshot_json() under "candidates" so bench --metrics-json
// output carries a per-pipeline cost table.
//
// Attribution is ambient: fold workers install a CandidateScope naming
// the pipeline path, and lower layers (PrefixCache) call prefix_event()
// without knowing which candidate is running.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace coda::obs {

/// Aggregated cost of one candidate pipeline (keyed by its spec string).
struct CandidateCost {
  std::uint64_t folds = 0;         ///< fold evaluations executed
  double fold_seconds = 0.0;       ///< steady-clock compute time summed
  std::uint64_t prefix_hits = 0;   ///< prefix-cache hits while attributed
  std::uint64_t prefix_misses = 0;
  std::uint64_t cached = 0;  ///< times served from the cooperative cache
  // Phase breakdown (ISSUE 9): where a candidate's wall time went —
  // transform preparation, model fitting, scoring, and waiting on a
  // concurrent peer's claim. prepare+fit+score ≈ fold_seconds (each fold
  // reports its phases and its total independently).
  double prepare_seconds = 0.0;     ///< data/transform preparation
  double fit_seconds = 0.0;         ///< model fitting
  double score_seconds = 0.0;       ///< predict + metric scoring
  double claim_wait_seconds = 0.0;  ///< waiting on another client's claim
  /// Successive-halving search (ISSUE 10): rung at which the candidate was
  /// pruned; -1 = never pruned (reached the final rung, or the search was
  /// exhaustive). A pruned row still reports the folds it actually ran in
  /// `folds`/`fold_seconds` — partial evaluation, never a zero/NaN row.
  std::int64_t pruned_at_rung = -1;
};

/// A fold phase charged via the ambient candidate attribution.
enum class Phase : std::uint8_t { kPrepare = 0, kFit = 1, kScore = 2 };

/// Process-wide candidate cost table.
class CandidateCosts {
 public:
  static CandidateCosts& instance();

  void record_fold(const std::string& path, double seconds);
  void record_cached(const std::string& path);
  void record_prefix(const std::string& path, bool hit);
  void record_phase(const std::string& path, Phase phase, double seconds);
  void record_claim_wait(const std::string& path, double seconds);
  /// Marks `path` pruned at `rung` by the halving scheduler.
  void record_pruned(const std::string& path, int rung);

  /// Copy of the table, keyed (and therefore sorted) by path.
  std::map<std::string, CandidateCost> snapshot() const;

  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, CandidateCost> table_;
};

/// RAII ambient attribution: prefix_event() calls on this thread while the
/// scope is live are charged to `path`.
class CandidateScope {
 public:
  explicit CandidateScope(std::string path);
  ~CandidateScope();

  CandidateScope(const CandidateScope&) = delete;
  CandidateScope& operator=(const CandidateScope&) = delete;

 private:
  std::string prev_;
};

/// The calling thread's ambient candidate path ("" = unattributed).
const std::string& current_candidate();

/// Charges a prefix-cache hit/miss to the ambient candidate (no-op when
/// unattributed).
void prefix_event(bool hit);

/// Charges `seconds` of a fold phase to the ambient candidate (no-op when
/// unattributed). Score paths wrap their prepare/fit/score blocks with a
/// Stopwatch and report here, alongside the PROF_SCOPE region.
void phase_event(Phase phase, double seconds);

}  // namespace coda::obs
