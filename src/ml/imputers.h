// Data imputation (Sections II/III: "Missing data may need to be imputed by
// an appropriate method ... e.g. mean, median, mode, k nearest neighbors").
// Missing cells are represented as NaN.
#pragma once

#include <vector>

#include "src/core/component.h"

namespace coda {

/// Replaces NaN cells with a per-column statistic learned during fit.
/// Parameter: strategy (string) — "mean", "median" or "mode".
class SimpleImputer final : public Transformer {
 public:
  SimpleImputer() : Transformer("simpleimputer") {
    declare_param("strategy", std::string("mean"));
  }

  void fit(const Matrix& X, const std::vector<double>& y) override;
  Matrix transform(const Matrix& X) const override;
  std::unique_ptr<Component> clone() const override {
    return std::make_unique<SimpleImputer>(*this);
  }

  const std::vector<double>& fill_values() const { return fill_values_; }

 private:
  std::vector<double> fill_values_;
};

/// Replaces NaN cells with the mean of the k training rows closest in the
/// jointly observed columns. Parameter: k (int, default 5).
class KnnImputer final : public Transformer {
 public:
  KnnImputer() : Transformer("knnimputer") {
    declare_param("k", std::int64_t{5});
  }

  void fit(const Matrix& X, const std::vector<double>& y) override;
  Matrix transform(const Matrix& X) const override;
  std::unique_ptr<Component> clone() const override {
    return std::make_unique<KnnImputer>(*this);
  }

 private:
  Matrix train_;
  std::vector<double> column_means_;  // fallback when no neighbour qualifies
};

/// Number of NaN cells in a matrix (diagnostics/tests).
std::size_t count_missing(const Matrix& X);

}  // namespace coda
