#include "src/ml/imputers.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace coda {
namespace {

bool is_missing(double v) { return std::isnan(v); }

std::vector<double> observed_column(const Matrix& X, std::size_t c) {
  std::vector<double> vals;
  vals.reserve(X.rows());
  for (std::size_t r = 0; r < X.rows(); ++r) {
    if (!is_missing(X(r, c))) vals.push_back(X(r, c));
  }
  return vals;
}

double mean_of(const std::vector<double>& v) {
  double s = 0.0;
  for (const double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double median_of(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t mid = v.size() / 2;
  return v.size() % 2 == 1 ? v[mid] : (v[mid - 1] + v[mid]) / 2.0;
}

double mode_of(const std::vector<double>& v) {
  std::map<double, std::size_t> counts;
  for (const double x : v) ++counts[x];
  double best = v.front();
  std::size_t best_count = 0;
  for (const auto& [value, count] : counts) {
    if (count > best_count) {
      best = value;
      best_count = count;
    }
  }
  return best;
}

}  // namespace

std::size_t count_missing(const Matrix& X) {
  std::size_t n = 0;
  for (const double v : X.data()) {
    if (is_missing(v)) ++n;
  }
  return n;
}

void SimpleImputer::fit(const Matrix& X, const std::vector<double>&) {
  require(X.rows() > 0, "SimpleImputer: empty input");
  const std::string& strategy = params().get_string("strategy");
  fill_values_.assign(X.cols(), 0.0);
  for (std::size_t c = 0; c < X.cols(); ++c) {
    const auto observed = observed_column(X, c);
    require(!observed.empty(), "SimpleImputer: column " + std::to_string(c) +
                                   " has no observed values");
    if (strategy == "mean") {
      fill_values_[c] = mean_of(observed);
    } else if (strategy == "median") {
      fill_values_[c] = median_of(observed);
    } else if (strategy == "mode") {
      fill_values_[c] = mode_of(observed);
    } else {
      throw InvalidArgument("SimpleImputer: unknown strategy '" + strategy +
                            "'");
    }
  }
}

Matrix SimpleImputer::transform(const Matrix& X) const {
  require_state(!fill_values_.empty(), "SimpleImputer: call fit() first");
  require(X.cols() == fill_values_.size(),
          "SimpleImputer: column count mismatch");
  Matrix out = X;
  for (std::size_t r = 0; r < out.rows(); ++r) {
    for (std::size_t c = 0; c < out.cols(); ++c) {
      if (is_missing(out(r, c))) out(r, c) = fill_values_[c];
    }
  }
  return out;
}

void KnnImputer::fit(const Matrix& X, const std::vector<double>&) {
  require(X.rows() > 0, "KnnImputer: empty input");
  train_ = X;
  column_means_.assign(X.cols(), 0.0);
  for (std::size_t c = 0; c < X.cols(); ++c) {
    const auto observed = observed_column(X, c);
    require(!observed.empty(), "KnnImputer: column " + std::to_string(c) +
                                   " has no observed values");
    column_means_[c] = mean_of(observed);
  }
}

Matrix KnnImputer::transform(const Matrix& X) const {
  require_state(train_.rows() > 0, "KnnImputer: call fit() first");
  require(X.cols() == train_.cols(), "KnnImputer: column count mismatch");
  const auto k = static_cast<std::size_t>(params().get_int("k"));
  require(k >= 1, "KnnImputer: k must be >= 1");

  Matrix out = X;
  for (std::size_t r = 0; r < X.rows(); ++r) {
    // Columns observed in this row define the distance space.
    std::vector<std::size_t> observed_cols;
    for (std::size_t c = 0; c < X.cols(); ++c) {
      if (!is_missing(X(r, c))) observed_cols.push_back(c);
    }
    for (std::size_t c = 0; c < X.cols(); ++c) {
      if (!is_missing(X(r, c))) continue;
      // Candidate neighbours: training rows with column c observed and a
      // finite distance over this row's observed columns.
      std::vector<std::pair<double, double>> dist_value;
      for (std::size_t t = 0; t < train_.rows(); ++t) {
        if (is_missing(train_(t, c))) continue;
        double dist = 0.0;
        std::size_t shared = 0;
        for (const std::size_t oc : observed_cols) {
          if (is_missing(train_(t, oc))) continue;
          const double d = X(r, oc) - train_(t, oc);
          dist += d * d;
          ++shared;
        }
        if (shared == 0 && !observed_cols.empty()) continue;
        dist_value.emplace_back(dist, train_(t, c));
      }
      if (dist_value.empty()) {
        out(r, c) = column_means_[c];
        continue;
      }
      const std::size_t use = std::min(k, dist_value.size());
      std::partial_sort(dist_value.begin(),
                        dist_value.begin() + static_cast<std::ptrdiff_t>(use),
                        dist_value.end());
      double s = 0.0;
      for (std::size_t i = 0; i < use; ++i) s += dist_value[i].second;
      out(r, c) = s / static_cast<double>(use);
    }
  }
  return out;
}

}  // namespace coda
