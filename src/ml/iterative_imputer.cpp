#include "src/ml/iterative_imputer.h"

#include <cmath>

#include "src/ml/linalg.h"

namespace coda {
namespace {

bool is_missing(double v) { return std::isnan(v); }

// Design matrix over all columns except `target`, plus intercept.
Matrix design_without(const Matrix& X, std::size_t target) {
  Matrix out(X.rows(), X.cols());  // d-1 features + intercept = d columns
  for (std::size_t r = 0; r < X.rows(); ++r) {
    std::size_t k = 0;
    for (std::size_t c = 0; c < X.cols(); ++c) {
      if (c == target) continue;
      out(r, k++) = X(r, c);
    }
    out(r, X.cols() - 1) = 1.0;
  }
  return out;
}

double predict_row(const Matrix& X, std::size_t row, std::size_t target,
                   const std::vector<double>& weights) {
  double acc = weights.back();
  std::size_t k = 0;
  for (std::size_t c = 0; c < X.cols(); ++c) {
    if (c == target) continue;
    acc += weights[k++] * X(row, c);
  }
  return acc;
}

}  // namespace

void IterativeImputer::fit(const Matrix& X, const std::vector<double>&) {
  require(X.rows() > 0, "IterativeImputer: empty input");
  const auto sweeps = static_cast<std::size_t>(params().get_int("sweeps"));
  const double ridge = params().get_double("ridge");
  require(sweeps >= 1, "IterativeImputer: sweeps must be >= 1");
  const std::size_t d = X.cols();

  // Initial fill: column means over observed values.
  column_means_.assign(d, 0.0);
  std::vector<std::vector<std::size_t>> missing_rows(d);
  Matrix work = X;
  for (std::size_t c = 0; c < d; ++c) {
    double sum = 0.0;
    std::size_t observed = 0;
    for (std::size_t r = 0; r < X.rows(); ++r) {
      if (is_missing(X(r, c))) {
        missing_rows[c].push_back(r);
      } else {
        sum += X(r, c);
        ++observed;
      }
    }
    require(observed > 0, "IterativeImputer: column " + std::to_string(c) +
                              " has no observed values");
    column_means_[c] = sum / static_cast<double>(observed);
    for (const std::size_t r : missing_rows[c]) {
      work(r, c) = column_means_[c];
    }
  }

  // Chained sweeps: re-fit each incomplete column on the current state of
  // the other columns, using only rows where the target is observed.
  column_models_.assign(d, {});
  for (std::size_t sweep = 0; sweep < sweeps; ++sweep) {
    for (std::size_t c = 0; c < d; ++c) {
      if (missing_rows[c].empty() && sweep > 0) continue;
      std::vector<std::size_t> observed;
      for (std::size_t r = 0; r < X.rows(); ++r) {
        if (!is_missing(X(r, c))) observed.push_back(r);
      }
      if (observed.size() < d + 1) continue;  // underdetermined: keep means
      const Matrix features = design_without(work, c).select_rows(observed);
      std::vector<double> targets;
      targets.reserve(observed.size());
      for (const std::size_t r : observed) targets.push_back(work(r, c));
      column_models_[c] = least_squares(features, targets, ridge);
      for (const std::size_t r : missing_rows[c]) {
        work(r, c) = predict_row(work, r, c, column_models_[c]);
      }
    }
  }
  fitted_cols_ = d;
}

Matrix IterativeImputer::transform(const Matrix& X) const {
  require_state(fitted_cols_ != 0, "IterativeImputer: call fit() first");
  require(X.cols() == fitted_cols_, "IterativeImputer: column mismatch");
  Matrix out = X;
  // First pass: fill every missing cell with the column mean so chained
  // predictions have complete inputs; second pass: refine via the fitted
  // per-column models.
  std::vector<std::pair<std::size_t, std::size_t>> holes;
  for (std::size_t r = 0; r < out.rows(); ++r) {
    for (std::size_t c = 0; c < out.cols(); ++c) {
      if (is_missing(out(r, c))) {
        holes.emplace_back(r, c);
        out(r, c) = column_means_[c];
      }
    }
  }
  for (const auto& [r, c] : holes) {
    if (!column_models_[c].empty()) {
      out(r, c) = predict_row(out, r, c, column_models_[c]);
    }
  }
  return out;
}

}  // namespace coda
