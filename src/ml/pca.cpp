#include "src/ml/pca.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/core/kernels.h"

namespace coda {

Matrix covariance_matrix(const Matrix& X) {
  require(X.rows() > 0, "covariance_matrix: empty input");
  const auto means = X.col_means();
  const std::size_t d = X.cols();
  // Center once, then the covariance is a single TN GEMM over the centered
  // matrix; symmetry is exact since mirrored elements sum the same
  // products in the same order.
  Matrix centered(X.rows(), d);
  for (std::size_t r = 0; r < X.rows(); ++r) {
    for (std::size_t i = 0; i < d; ++i) {
      centered(r, i) = X(r, i) - means[i];
    }
  }
  Matrix cov(d, d);
  kernels::gemm_tn(d, d, X.rows(), centered.ptr(), d, centered.ptr(), d,
                   cov.ptr(), d);
  const double n = static_cast<double>(X.rows());
  for (double& v : cov.data()) v /= n;
  return cov;
}

void symmetric_eigen(const Matrix& symmetric,
                     std::vector<double>& eigenvalues, Matrix& eigenvectors,
                     std::size_t max_sweeps) {
  const std::size_t d = symmetric.rows();
  require(d == symmetric.cols(), "symmetric_eigen: matrix not square");
  Matrix a = symmetric;
  Matrix v(d, d);
  for (std::size_t i = 0; i < d; ++i) v(i, i) = 1.0;

  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < d; ++p) {
      for (std::size_t q = p + 1; q < d; ++q) off += a(p, q) * a(p, q);
    }
    if (off < 1e-24) break;
    for (std::size_t p = 0; p < d; ++p) {
      for (std::size_t q = p + 1; q < d; ++q) {
        if (std::abs(a(p, q)) < 1e-30) continue;
        const double theta = (a(q, q) - a(p, p)) / (2.0 * a(p, q));
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (std::size_t k = 0; k < d; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < d; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < d; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs by eigenvalue, descending.
  std::vector<std::size_t> order(d);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&a](std::size_t x, std::size_t y) {
    return a(x, x) > a(y, y);
  });
  eigenvalues.resize(d);
  eigenvectors = Matrix(d, d);
  for (std::size_t j = 0; j < d; ++j) {
    eigenvalues[j] = a(order[j], order[j]);
    for (std::size_t i = 0; i < d; ++i) {
      eigenvectors(i, j) = v(i, order[j]);
    }
  }
}

void PCA::fit(const Matrix& X, const std::vector<double>&) {
  require(X.rows() > 0, "PCA: empty input");
  const auto n_components =
      static_cast<std::size_t>(params().get_int("n_components"));
  require(n_components >= 1, "PCA: n_components must be >= 1");
  require(n_components <= X.cols(),
          "PCA: n_components (" + std::to_string(n_components) +
              ") exceeds feature count (" + std::to_string(X.cols()) + ")");
  whiten_ = params().get_bool("whiten");

  means_ = X.col_means();
  std::vector<double> all_eigenvalues;
  Matrix all_vectors;
  symmetric_eigen(covariance_matrix(X), all_eigenvalues, all_vectors);

  eigenvalues_.assign(all_eigenvalues.begin(),
                      all_eigenvalues.begin() +
                          static_cast<std::ptrdiff_t>(n_components));
  std::vector<std::size_t> cols(n_components);
  std::iota(cols.begin(), cols.end(), 0);
  components_ = all_vectors.select_cols(cols);
}

Matrix PCA::transform(const Matrix& X) const {
  require_state(!means_.empty(), "PCA: call fit() first");
  require(X.cols() == means_.size(), "PCA: column count mismatch");
  Matrix centered(X.rows(), X.cols());
  for (std::size_t r = 0; r < X.rows(); ++r) {
    for (std::size_t c = 0; c < X.cols(); ++c) {
      centered(r, c) = X(r, c) - means_[c];
    }
  }
  Matrix projected = centered.multiply(components_);
  if (whiten_) {
    for (std::size_t c = 0; c < projected.cols(); ++c) {
      const double scale =
          eigenvalues_[c] > 0.0 ? 1.0 / std::sqrt(eigenvalues_[c]) : 1.0;
      for (std::size_t r = 0; r < projected.rows(); ++r) {
        projected(r, c) *= scale;
      }
    }
  }
  return projected;
}

}  // namespace coda
