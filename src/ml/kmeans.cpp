#include "src/ml/kmeans.h"

#include <cmath>
#include <limits>

#include "src/util/error.h"
#include "src/util/random.h"

namespace coda {
namespace {

double squared_distance(const Matrix& a, std::size_t ra, const Matrix& b,
                        std::size_t rb) {
  double s = 0.0;
  for (std::size_t c = 0; c < a.cols(); ++c) {
    const double d = a(ra, c) - b(rb, c);
    s += d * d;
  }
  return s;
}

}  // namespace

KMeans::KMeans() : KMeans(Config()) {}

KMeans::KMeans(Config config) : config_(config) {
  require(config_.k >= 1, "KMeans: k must be >= 1");
  require(config_.max_iterations >= 1, "KMeans: max_iterations must be >= 1");
}

std::size_t KMeans::nearest_centroid(const Matrix& X, std::size_t row) const {
  std::size_t best = 0;
  double best_dist = std::numeric_limits<double>::max();
  for (std::size_t k = 0; k < centroids_.rows(); ++k) {
    const double d = squared_distance(X, row, centroids_, k);
    if (d < best_dist) {
      best_dist = d;
      best = k;
    }
  }
  return best;
}

std::vector<std::size_t> KMeans::fit(const Matrix& X) {
  require(X.rows() >= config_.k, "KMeans: fewer rows than clusters");
  Rng rng(config_.seed);

  // k-means++ seeding: first centroid uniform, then proportional to the
  // squared distance to the nearest chosen centroid.
  centroids_ = Matrix(config_.k, X.cols());
  std::vector<std::size_t> chosen;
  chosen.push_back(rng.index(X.rows()));
  while (chosen.size() < config_.k) {
    std::vector<double> min_dist(X.rows());
    double total = 0.0;
    for (std::size_t r = 0; r < X.rows(); ++r) {
      double best = std::numeric_limits<double>::max();
      for (const std::size_t c : chosen) {
        best = std::min(best, squared_distance(X, r, X, c));
      }
      min_dist[r] = best;
      total += best;
    }
    if (total == 0.0) {
      chosen.push_back(rng.index(X.rows()));  // all duplicates
      continue;
    }
    double pick = rng.uniform(0.0, total);
    std::size_t selected = X.rows() - 1;
    for (std::size_t r = 0; r < X.rows(); ++r) {
      pick -= min_dist[r];
      if (pick <= 0.0) {
        selected = r;
        break;
      }
    }
    chosen.push_back(selected);
  }
  for (std::size_t k = 0; k < config_.k; ++k) {
    for (std::size_t c = 0; c < X.cols(); ++c) {
      centroids_(k, c) = X(chosen[k], c);
    }
  }

  std::vector<std::size_t> assignment(X.rows(), 0);
  iterations_run_ = 0;
  for (std::size_t iter = 0; iter < config_.max_iterations; ++iter) {
    ++iterations_run_;
    for (std::size_t r = 0; r < X.rows(); ++r) {
      assignment[r] = nearest_centroid(X, r);
    }
    // Recompute centroids.
    Matrix next(config_.k, X.cols());
    std::vector<std::size_t> counts(config_.k, 0);
    for (std::size_t r = 0; r < X.rows(); ++r) {
      ++counts[assignment[r]];
      for (std::size_t c = 0; c < X.cols(); ++c) {
        next(assignment[r], c) += X(r, c);
      }
    }
    for (std::size_t k = 0; k < config_.k; ++k) {
      if (counts[k] == 0) {
        // Re-seed an empty cluster at a random row.
        const std::size_t r = rng.index(X.rows());
        for (std::size_t c = 0; c < X.cols(); ++c) next(k, c) = X(r, c);
        continue;
      }
      for (std::size_t c = 0; c < X.cols(); ++c) {
        next(k, c) /= static_cast<double>(counts[k]);
      }
    }
    // Convergence check: max centroid movement.
    double max_move = 0.0;
    for (std::size_t k = 0; k < config_.k; ++k) {
      max_move = std::max(max_move,
                          squared_distance(next, k, centroids_, k));
    }
    centroids_ = std::move(next);
    if (std::sqrt(max_move) < config_.tolerance) break;
  }

  for (std::size_t r = 0; r < X.rows(); ++r) {
    assignment[r] = nearest_centroid(X, r);
  }
  inertia_ = 0.0;
  for (std::size_t r = 0; r < X.rows(); ++r) {
    inertia_ += squared_distance(X, r, centroids_, assignment[r]);
  }
  return assignment;
}

std::vector<std::size_t> KMeans::assign(const Matrix& X) const {
  require_state(centroids_.rows() > 0, "KMeans: call fit() first");
  require(X.cols() == centroids_.cols(), "KMeans: dimension mismatch");
  std::vector<std::size_t> out(X.rows());
  for (std::size_t r = 0; r < X.rows(); ++r) out[r] = nearest_centroid(X, r);
  return out;
}

}  // namespace coda
