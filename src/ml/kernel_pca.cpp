#include "src/ml/kernel_pca.h"

#include <cmath>

#include "src/ml/pca.h"

namespace coda {

double KernelPCA::kernel(const Matrix& a, std::size_t ra, const Matrix& b,
                         std::size_t rb) const {
  double dist = 0.0;
  for (std::size_t c = 0; c < a.cols(); ++c) {
    const double d = a(ra, c) - b(rb, c);
    dist += d * d;
  }
  return std::exp(-gamma_ * dist);
}

void KernelPCA::fit(const Matrix& X, const std::vector<double>&) {
  require(X.rows() >= 2, "KernelPCA: need at least 2 samples");
  const std::size_t n = X.rows();
  const auto n_components =
      static_cast<std::size_t>(params().get_int("n_components"));
  require(n_components >= 1 && n_components <= n,
          "KernelPCA: n_components out of range");
  gamma_ = params().get_double("gamma");
  if (gamma_ <= 0.0) gamma_ = 1.0 / static_cast<double>(X.cols());
  train_ = X;

  // Kernel matrix and its double centering K' = K - 1K - K1 + 1K1.
  Matrix k(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      k(i, j) = kernel(X, i, X, j);
      k(j, i) = k(i, j);
    }
  }
  train_row_means_.assign(n, 0.0);
  train_total_mean_ = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) train_row_means_[i] += k(i, j);
    train_row_means_[i] /= static_cast<double>(n);
    train_total_mean_ += train_row_means_[i];
  }
  train_total_mean_ /= static_cast<double>(n);
  Matrix centered(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      centered(i, j) = k(i, j) - train_row_means_[i] - train_row_means_[j] +
                       train_total_mean_;
    }
  }

  std::vector<double> all_values;
  Matrix all_vectors;
  symmetric_eigen(centered, all_values, all_vectors);

  eigenvalues_.assign(all_values.begin(),
                      all_values.begin() +
                          static_cast<std::ptrdiff_t>(n_components));
  // Scale eigenvectors by 1/sqrt(lambda) so projections are orthonormal
  // feature-space coordinates.
  alphas_ = Matrix(n, n_components);
  for (std::size_t c = 0; c < n_components; ++c) {
    const double lambda = std::max(all_values[c], 1e-12);
    const double scale = 1.0 / std::sqrt(lambda);
    for (std::size_t i = 0; i < n; ++i) {
      alphas_(i, c) = all_vectors(i, c) * scale;
    }
  }
}

Matrix KernelPCA::transform(const Matrix& X) const {
  require_state(train_.rows() > 0, "KernelPCA: call fit() first");
  require(X.cols() == train_.cols(), "KernelPCA: column count mismatch");
  const std::size_t n = train_.rows();
  Matrix out(X.rows(), alphas_.cols());
  std::vector<double> k_row(n);
  for (std::size_t r = 0; r < X.rows(); ++r) {
    double row_mean = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      k_row[i] = kernel(X, r, train_, i);
      row_mean += k_row[i];
    }
    row_mean /= static_cast<double>(n);
    for (std::size_t c = 0; c < alphas_.cols(); ++c) {
      double acc = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double centered =
            k_row[i] - row_mean - train_row_means_[i] + train_total_mean_;
        acc += centered * alphas_(i, c);
      }
      out(r, c) = acc;
    }
  }
  return out;
}

}  // namespace coda
