// Kernel PCA (Table I lists "kernel-PCA" as a feature-transformation
// option): PCA in an RBF feature space via eigendecomposition of the
// centered kernel matrix.
#pragma once

#include <vector>

#include "src/core/component.h"

namespace coda {

/// RBF kernel PCA. Parameters: n_components (int, default 2),
/// gamma (double, default 0 = 1/n_features).
///
/// fit() stores the training rows (projection of new points needs kernel
/// evaluations against them) — O(n^2) fit, O(n) per projected row.
class KernelPCA final : public Transformer {
 public:
  KernelPCA() : Transformer("kernelpca") {
    declare_param("n_components", std::int64_t{2});
    declare_param("gamma", 0.0);
  }

  void fit(const Matrix& X, const std::vector<double>& y) override;
  Matrix transform(const Matrix& X) const override;
  std::unique_ptr<Component> clone() const override {
    return std::make_unique<KernelPCA>(*this);
  }

  const std::vector<double>& eigenvalues() const { return eigenvalues_; }

 private:
  double kernel(const Matrix& a, std::size_t ra, const Matrix& b,
                std::size_t rb) const;

  Matrix train_;
  double gamma_ = 1.0;
  Matrix alphas_;                   // n x n_components (scaled eigvecs)
  std::vector<double> eigenvalues_;
  std::vector<double> train_row_means_;  // row means of the kernel matrix
  double train_total_mean_ = 0.0;
};

}  // namespace coda
