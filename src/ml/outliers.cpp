#include "src/ml/outliers.h"

#include <algorithm>
#include <cmath>

#include "src/ml/scalers.h"

namespace coda {

void ZScoreClipper::fit(const Matrix& X, const std::vector<double>&) {
  require(X.rows() > 0, "ZScoreClipper: empty input");
  const double z_max = params().get_double("z_max");
  require(z_max > 0.0, "ZScoreClipper: z_max must be positive");
  const auto means = X.col_means();
  const auto sds = X.col_stddevs();
  lower_.resize(X.cols());
  upper_.resize(X.cols());
  for (std::size_t c = 0; c < X.cols(); ++c) {
    lower_[c] = means[c] - z_max * sds[c];
    upper_[c] = means[c] + z_max * sds[c];
  }
}

Matrix ZScoreClipper::transform(const Matrix& X) const {
  require_state(!lower_.empty(), "ZScoreClipper: call fit() first");
  require(X.cols() == lower_.size(), "ZScoreClipper: column count mismatch");
  Matrix out = X;
  for (std::size_t r = 0; r < out.rows(); ++r) {
    for (std::size_t c = 0; c < out.cols(); ++c) {
      out(r, c) = std::clamp(out(r, c), lower_[c], upper_[c]);
    }
  }
  return out;
}

void IqrClipper::fit(const Matrix& X, const std::vector<double>&) {
  require(X.rows() > 0, "IqrClipper: empty input");
  const double factor = params().get_double("factor");
  require(factor > 0.0, "IqrClipper: factor must be positive");
  lower_.resize(X.cols());
  upper_.resize(X.cols());
  for (std::size_t c = 0; c < X.cols(); ++c) {
    auto col = X.col(c);
    const double q1 = quantile(col, 0.25);
    const double q3 = quantile(col, 0.75);
    const double iqr = q3 - q1;
    lower_[c] = q1 - factor * iqr;
    upper_[c] = q3 + factor * iqr;
  }
}

Matrix IqrClipper::transform(const Matrix& X) const {
  require_state(!lower_.empty(), "IqrClipper: call fit() first");
  require(X.cols() == lower_.size(), "IqrClipper: column count mismatch");
  Matrix out = X;
  for (std::size_t r = 0; r < out.rows(); ++r) {
    for (std::size_t c = 0; c < out.cols(); ++c) {
      out(r, c) = std::clamp(out(r, c), lower_[c], upper_[c]);
    }
  }
  return out;
}

std::vector<std::size_t> detect_outlier_rows(const Matrix& X, double z_max) {
  require(X.rows() > 0, "detect_outlier_rows: empty input");
  require(z_max > 0.0, "detect_outlier_rows: z_max must be positive");
  const auto means = X.col_means();
  auto sds = X.col_stddevs();
  for (double& s : sds) {
    if (s == 0.0) s = 1.0;
  }
  std::vector<std::size_t> rows;
  for (std::size_t r = 0; r < X.rows(); ++r) {
    for (std::size_t c = 0; c < X.cols(); ++c) {
      if (std::abs((X(r, c) - means[c]) / sds[c]) > z_max) {
        rows.push_back(r);
        break;
      }
    }
  }
  return rows;
}

Dataset remove_outlier_rows(const Dataset& d, double z_max) {
  const auto outliers = detect_outlier_rows(d.X, z_max);
  std::vector<bool> drop(d.n_samples(), false);
  for (const std::size_t r : outliers) drop[r] = true;
  std::vector<std::size_t> keep;
  keep.reserve(d.n_samples() - outliers.size());
  for (std::size_t r = 0; r < d.n_samples(); ++r) {
    if (!drop[r]) keep.push_back(r);
  }
  require(!keep.empty(), "remove_outlier_rows: all rows flagged as outliers");
  return d.select(keep);
}

}  // namespace coda
