// Linear Discriminant Analysis (Table I lists LDA as a feature-
// transformation option). Projects features onto the directions that
// maximize between-class over within-class scatter, solved as a
// generalized symmetric eigenproblem via Cholesky whitening.
#pragma once

#include <vector>

#include "src/core/component.h"

namespace coda {

/// Supervised feature transformation: at most (n_classes - 1) meaningful
/// components. Labels must be 0..C-1. Parameters: n_components (int,
/// default 1), shrinkage (double, default 1e-6 — added to the within-class
/// scatter diagonal for numerical stability).
class LinearDiscriminantAnalysis final : public Transformer {
 public:
  LinearDiscriminantAnalysis() : Transformer("lda") {
    declare_param("n_components", std::int64_t{1});
    declare_param("shrinkage", 1e-6);
  }

  void fit(const Matrix& X, const std::vector<double>& y) override;
  Matrix transform(const Matrix& X) const override;
  std::unique_ptr<Component> clone() const override {
    return std::make_unique<LinearDiscriminantAnalysis>(*this);
  }

  /// Discriminant directions as columns (after fit).
  const Matrix& components() const { return components_; }

  std::size_t n_classes_seen() const { return n_classes_; }

 private:
  Matrix components_;  // d x n_components
  std::size_t n_classes_ = 0;
  std::size_t fitted_cols_ = 0;
};

/// Cholesky factorization A = L L^T of a symmetric positive-definite
/// matrix; throws InvalidArgument when A is not positive definite.
/// Exposed for tests.
Matrix cholesky(const Matrix& a);

/// Solves L x = b (forward substitution) for lower-triangular L.
std::vector<double> forward_substitute(const Matrix& lower,
                                       const std::vector<double>& b);

/// Solves L^T x = b (back substitution) for lower-triangular L.
std::vector<double> back_substitute_transposed(const Matrix& lower,
                                               const std::vector<double>& b);

}  // namespace coda
