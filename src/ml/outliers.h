// Outlier handling (Section II: "Data which constitute erroneous and/or
// outlying values may need to be identified and discarded").
//
// Two forms are provided: pipeline transformers that *clip* values to bounds
// learned on training data (transformers cannot drop rows mid-pipeline), and
// free functions that *detect/remove* outlying rows during data preparation.
#pragma once

#include <vector>

#include "src/core/component.h"
#include "src/data/dataset.h"

namespace coda {

/// Clips each column to mean ± z_max standard deviations learned at fit
/// time. Parameter: z_max (double, default 3.0).
class ZScoreClipper final : public Transformer {
 public:
  ZScoreClipper() : Transformer("zscoreclipper") {
    declare_param("z_max", 3.0);
  }

  void fit(const Matrix& X, const std::vector<double>& y) override;
  Matrix transform(const Matrix& X) const override;
  std::unique_ptr<Component> clone() const override {
    return std::make_unique<ZScoreClipper>(*this);
  }

 private:
  std::vector<double> lower_;
  std::vector<double> upper_;
};

/// Clips each column to [Q1 - factor*IQR, Q3 + factor*IQR] (Tukey fences).
/// Parameter: factor (double, default 1.5).
class IqrClipper final : public Transformer {
 public:
  IqrClipper() : Transformer("iqrclipper") {
    declare_param("factor", 1.5);
  }

  void fit(const Matrix& X, const std::vector<double>& y) override;
  Matrix transform(const Matrix& X) const override;
  std::unique_ptr<Component> clone() const override {
    return std::make_unique<IqrClipper>(*this);
  }

 private:
  std::vector<double> lower_;
  std::vector<double> upper_;
};

/// Row indices whose max per-column |z-score| exceeds `z_max`.
std::vector<std::size_t> detect_outlier_rows(const Matrix& X, double z_max);

/// Returns `d` without the rows flagged by detect_outlier_rows.
Dataset remove_outlier_rows(const Dataset& d, double z_max);

}  // namespace coda
