#include "src/ml/linear.h"

#include <cmath>

#include "src/ml/linalg.h"

namespace coda {
namespace {

// X with an appended all-ones intercept column.
Matrix with_intercept(const Matrix& X) {
  Matrix out(X.rows(), X.cols() + 1);
  for (std::size_t r = 0; r < X.rows(); ++r) {
    for (std::size_t c = 0; c < X.cols(); ++c) out(r, c) = X(r, c);
    out(r, X.cols()) = 1.0;
  }
  return out;
}

std::vector<double> linear_predict(const Matrix& X,
                                   const std::vector<double>& weights) {
  require(X.cols() + 1 == weights.size(),
          "linear model: feature count mismatch");
  std::vector<double> out(X.rows());
  for (std::size_t r = 0; r < X.rows(); ++r) {
    double s = weights.back();  // intercept
    for (std::size_t c = 0; c < X.cols(); ++c) s += weights[c] * X(r, c);
    out[r] = s;
  }
  return out;
}

double sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

}  // namespace

void LinearRegression::fit(const Matrix& X, const std::vector<double>& y) {
  weights_ = least_squares(with_intercept(X), y, 0.0);
}

std::vector<double> LinearRegression::predict(const Matrix& X) const {
  require_state(!weights_.empty(), "LinearRegression: call fit() first");
  return linear_predict(X, weights_);
}

void Ridge::fit(const Matrix& X, const std::vector<double>& y) {
  const double alpha = params().get_double("alpha");
  require(alpha >= 0.0, "Ridge: alpha must be >= 0");
  weights_ = least_squares(with_intercept(X), y, alpha);
}

std::vector<double> Ridge::predict(const Matrix& X) const {
  require_state(!weights_.empty(), "Ridge: call fit() first");
  return linear_predict(X, weights_);
}

void LogisticRegression::fit(const Matrix& X, const std::vector<double>& y) {
  require(X.rows() == y.size(), "LogisticRegression: X/y size mismatch");
  require(X.rows() > 0, "LogisticRegression: empty input");
  const double lr = params().get_double("learning_rate");
  const auto epochs = static_cast<std::size_t>(params().get_int("epochs"));
  const double l2 = params().get_double("l2");
  require(lr > 0.0 && epochs > 0, "LogisticRegression: bad hyperparameters");

  const std::size_t d = X.cols() + 1;  // + intercept
  weights_.assign(d, 0.0);
  const double n = static_cast<double>(X.rows());
  std::vector<double> grad(d);
  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    std::fill(grad.begin(), grad.end(), 0.0);
    for (std::size_t r = 0; r < X.rows(); ++r) {
      double z = weights_.back();
      for (std::size_t c = 0; c < X.cols(); ++c) z += weights_[c] * X(r, c);
      const double err = sigmoid(z) - (y[r] >= 0.5 ? 1.0 : 0.0);
      for (std::size_t c = 0; c < X.cols(); ++c) grad[c] += err * X(r, c);
      grad[d - 1] += err;
    }
    for (std::size_t c = 0; c < d; ++c) {
      const double reg = c + 1 == d ? 0.0 : l2 * weights_[c];
      weights_[c] -= lr * (grad[c] / n + reg);
    }
  }
}

std::vector<double> LogisticRegression::predict(const Matrix& X) const {
  require_state(!weights_.empty(), "LogisticRegression: call fit() first");
  auto scores = linear_predict(X, weights_);
  for (double& s : scores) s = sigmoid(s);
  return scores;
}

}  // namespace coda
