#include "src/ml/scalers.h"

#include <algorithm>
#include <cmath>

namespace coda {

double quantile(std::vector<double> values, double q) {
  require(!values.empty(), "quantile: empty input");
  require(q >= 0.0 && q <= 1.0, "quantile: q out of [0,1]");
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

void StandardScaler::fit(const Matrix& X, const std::vector<double>&) {
  require(X.rows() > 0, "StandardScaler: empty input");
  means_ = X.col_means();
  scales_ = X.col_stddevs();
  for (double& s : scales_) {
    if (s == 0.0) s = 1.0;  // constant column: leave centred at zero
  }
}

Matrix StandardScaler::transform(const Matrix& X) const {
  require_state(!means_.empty(), "StandardScaler: call fit() first");
  require(X.cols() == means_.size(), "StandardScaler: column count mismatch");
  Matrix out(X.rows(), X.cols());
  for (std::size_t r = 0; r < X.rows(); ++r) {
    for (std::size_t c = 0; c < X.cols(); ++c) {
      out(r, c) = (X(r, c) - means_[c]) / scales_[c];
    }
  }
  return out;
}

void MinMaxScaler::fit(const Matrix& X, const std::vector<double>&) {
  require(X.rows() > 0, "MinMaxScaler: empty input");
  mins_.assign(X.cols(), 0.0);
  ranges_.assign(X.cols(), 1.0);
  for (std::size_t c = 0; c < X.cols(); ++c) {
    double lo = X(0, c);
    double hi = X(0, c);
    for (std::size_t r = 1; r < X.rows(); ++r) {
      lo = std::min(lo, X(r, c));
      hi = std::max(hi, X(r, c));
    }
    mins_[c] = lo;
    ranges_[c] = (hi - lo) == 0.0 ? 1.0 : hi - lo;
  }
}

Matrix MinMaxScaler::transform(const Matrix& X) const {
  require_state(!mins_.empty(), "MinMaxScaler: call fit() first");
  require(X.cols() == mins_.size(), "MinMaxScaler: column count mismatch");
  Matrix out(X.rows(), X.cols());
  for (std::size_t r = 0; r < X.rows(); ++r) {
    for (std::size_t c = 0; c < X.cols(); ++c) {
      out(r, c) = (X(r, c) - mins_[c]) / ranges_[c];
    }
  }
  return out;
}

void RobustScaler::fit(const Matrix& X, const std::vector<double>&) {
  require(X.rows() > 0, "RobustScaler: empty input");
  medians_.assign(X.cols(), 0.0);
  iqrs_.assign(X.cols(), 1.0);
  for (std::size_t c = 0; c < X.cols(); ++c) {
    auto col = X.col(c);
    medians_[c] = quantile(col, 0.5);
    const double iqr = quantile(col, 0.75) - quantile(col, 0.25);
    iqrs_[c] = iqr == 0.0 ? 1.0 : iqr;
  }
}

Matrix RobustScaler::transform(const Matrix& X) const {
  require_state(!medians_.empty(), "RobustScaler: call fit() first");
  require(X.cols() == medians_.size(), "RobustScaler: column count mismatch");
  Matrix out(X.rows(), X.cols());
  for (std::size_t r = 0; r < X.rows(); ++r) {
    for (std::size_t c = 0; c < X.cols(); ++c) {
      out(r, c) = (X(r, c) - medians_[c]) / iqrs_[c];
    }
  }
  return out;
}

}  // namespace coda
