#include "src/ml/mlp.h"

#include <cmath>

#include "src/nn/dense.h"
#include "src/nn/dropout.h"
#include "src/nn/loss.h"
#include "src/nn/optimizer.h"
#include "src/nn/trainer.h"

namespace coda {
namespace {

struct MlpParams {
  std::size_t hidden;
  std::size_t hidden_layers;
  double dropout;
  nn::TrainConfig train;
  double learning_rate;
  std::uint64_t seed;
};

MlpParams read_mlp_params(const ParamMap& params) {
  MlpParams p;
  p.hidden = static_cast<std::size_t>(params.get_int("hidden"));
  p.hidden_layers =
      static_cast<std::size_t>(params.get_int("hidden_layers"));
  p.dropout = params.get_double("dropout");
  p.train.epochs = static_cast<std::size_t>(params.get_int("epochs"));
  p.train.batch_size = static_cast<std::size_t>(params.get_int("batch_size"));
  p.learning_rate = params.get_double("learning_rate");
  p.seed = static_cast<std::uint64_t>(params.get_int("seed"));
  p.train.shuffle_seed = p.seed;
  require(p.hidden >= 1 && p.hidden_layers >= 1, "mlp: empty architecture");
  require(p.dropout >= 0.0 && p.dropout < 1.0, "mlp: dropout out of [0,1)");
  return p;
}

nn::Sequential build_mlp(std::size_t in_features, const MlpParams& p,
                         bool classifier) {
  // Activations ride in the Dense GEMM epilogue (fused bias+ReLU/Sigmoid
  // write-back) instead of separate elementwise layers; seeds are unchanged
  // so the weights match the old Dense+ReLU stacks exactly.
  nn::Sequential net;
  std::size_t width = in_features;
  for (std::size_t l = 0; l < p.hidden_layers; ++l) {
    net.emplace<nn::Dense>(width, p.hidden, p.seed + l,
                           kernels::Activation::kRelu);
    if (p.dropout > 0.0) net.emplace<nn::Dropout>(p.dropout, p.seed + 100 + l);
    width = p.hidden;
  }
  net.emplace<nn::Dense>(width, std::size_t{1}, p.seed + 999,
                         classifier ? kernels::Activation::kSigmoid
                                    : kernels::Activation::kNone);
  return net;
}

}  // namespace

void MlpRegressor::fit(const Matrix& X, const std::vector<double>& y) {
  require(X.rows() == y.size(), "MlpRegressor: X/y size mismatch");
  require(X.rows() > 0, "MlpRegressor: empty input");
  const MlpParams p = read_mlp_params(params());

  // Standardize targets so learning-rate defaults work across scales.
  y_mean_ = 0.0;
  for (const double v : y) y_mean_ += v;
  y_mean_ /= static_cast<double>(y.size());
  double var = 0.0;
  for (const double v : y) var += (v - y_mean_) * (v - y_mean_);
  y_scale_ = std::sqrt(var / static_cast<double>(y.size()));
  if (y_scale_ == 0.0) y_scale_ = 1.0;
  std::vector<double> scaled(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    scaled[i] = (y[i] - y_mean_) / y_scale_;
  }

  net_ = build_mlp(X.cols(), p, /*classifier=*/false);
  nn::MseLoss loss;
  nn::Adam optimizer(p.learning_rate);
  nn::train(net_, X, nn::column_matrix(scaled), loss, optimizer, p.train);
  fitted_ = true;
}

std::vector<double> MlpRegressor::predict(const Matrix& X) const {
  require_state(fitted_, "MlpRegressor: call fit() first");
  // forward() mutates layer caches; work on a copy to keep predict const.
  nn::Sequential net = net_;
  const Matrix out = net.forward(X, /*training=*/false);
  std::vector<double> pred(X.rows());
  for (std::size_t i = 0; i < X.rows(); ++i) {
    pred[i] = out(i, 0) * y_scale_ + y_mean_;
  }
  return pred;
}

void MlpClassifier::fit(const Matrix& X, const std::vector<double>& y) {
  require(X.rows() == y.size(), "MlpClassifier: X/y size mismatch");
  require(X.rows() > 0, "MlpClassifier: empty input");
  for (const double label : y) {
    require(label == 0.0 || label == 1.0,
            "MlpClassifier: labels must be 0/1");
  }
  const MlpParams p = read_mlp_params(params());
  net_ = build_mlp(X.cols(), p, /*classifier=*/true);
  nn::BceLoss loss;
  nn::Adam optimizer(p.learning_rate);
  nn::train(net_, X, nn::column_matrix(y), loss, optimizer, p.train);
  fitted_ = true;
}

std::vector<double> MlpClassifier::predict(const Matrix& X) const {
  require_state(fitted_, "MlpClassifier: call fit() first");
  nn::Sequential net = net_;
  const Matrix out = net.forward(X, /*training=*/false);
  std::vector<double> pred(X.rows());
  for (std::size_t i = 0; i < X.rows(); ++i) pred[i] = out(i, 0);
  return pred;
}

}  // namespace coda
