#include "src/ml/naive_bayes.h"

#include <algorithm>
#include <cmath>

namespace coda {

void GaussianNaiveBayes::fit(const Matrix& X, const std::vector<double>& y) {
  require(X.rows() == y.size(), "GaussianNB: X/y size mismatch");
  require(X.rows() > 0, "GaussianNB: empty input");
  const std::size_t d = X.cols();
  mean0_.assign(d, 0.0);
  mean1_.assign(d, 0.0);
  var0_.assign(d, 0.0);
  var1_.assign(d, 0.0);
  std::size_t n0 = 0;
  std::size_t n1 = 0;
  for (std::size_t r = 0; r < X.rows(); ++r) {
    require(y[r] == 0.0 || y[r] == 1.0, "GaussianNB: labels must be 0/1");
    auto& mean = y[r] == 1.0 ? mean1_ : mean0_;
    (y[r] == 1.0 ? n1 : n0) += 1;
    for (std::size_t c = 0; c < d; ++c) mean[c] += X(r, c);
  }
  require(n0 > 0 && n1 > 0, "GaussianNB: needs both classes present");
  for (std::size_t c = 0; c < d; ++c) {
    mean0_[c] /= static_cast<double>(n0);
    mean1_[c] /= static_cast<double>(n1);
  }
  double max_var = 0.0;
  for (std::size_t r = 0; r < X.rows(); ++r) {
    const auto& mean = y[r] == 1.0 ? mean1_ : mean0_;
    auto& var = y[r] == 1.0 ? var1_ : var0_;
    for (std::size_t c = 0; c < d; ++c) {
      const double dv = X(r, c) - mean[c];
      var[c] += dv * dv;
    }
  }
  for (std::size_t c = 0; c < d; ++c) {
    var0_[c] /= static_cast<double>(n0);
    var1_[c] /= static_cast<double>(n1);
    max_var = std::max({max_var, var0_[c], var1_[c]});
  }
  const double smoothing =
      params().get_double("var_smoothing") * std::max(max_var, 1.0);
  for (std::size_t c = 0; c < d; ++c) {
    var0_[c] += smoothing;
    var1_[c] += smoothing;
    if (var0_[c] <= 0.0) var0_[c] = 1e-12;
    if (var1_[c] <= 0.0) var1_[c] = 1e-12;
  }
  log_prior1_ = std::log(static_cast<double>(n1)) -
                std::log(static_cast<double>(n0));
  fitted_ = true;
}

std::vector<double> GaussianNaiveBayes::predict(const Matrix& X) const {
  require_state(fitted_, "GaussianNB: call fit() first");
  require(X.cols() == mean0_.size(), "GaussianNB: column count mismatch");
  std::vector<double> out(X.rows());
  for (std::size_t r = 0; r < X.rows(); ++r) {
    double log_ratio = log_prior1_;  // log P(1|x) - log P(0|x)
    for (std::size_t c = 0; c < X.cols(); ++c) {
      const double d1 = X(r, c) - mean1_[c];
      const double d0 = X(r, c) - mean0_[c];
      log_ratio += -0.5 * (std::log(var1_[c]) + d1 * d1 / var1_[c]) +
                   0.5 * (std::log(var0_[c]) + d0 * d0 / var0_[c]);
    }
    out[r] = 1.0 / (1.0 + std::exp(-log_ratio));
  }
  return out;
}

}  // namespace coda
