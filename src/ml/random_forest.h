// Random forests (Table I / Fig 3 "RandomForest" node): bagged CART trees
// with per-split random feature subsets.
#pragma once

#include <vector>

#include "src/ml/decision_tree.h"

namespace coda {

/// Random-forest regression. Parameters: n_trees (int, default 30),
/// max_depth (int, default 8), min_samples_split (int, default 2),
/// min_samples_leaf (int, default 1), max_features (int, default 0 =
/// sqrt(n_features)), seed (int, default 42).
class RandomForestRegressor final : public Estimator {
 public:
  RandomForestRegressor() : Estimator("randomforest") {
    declare_param("n_trees", std::int64_t{30});
    declare_param("max_depth", std::int64_t{8});
    declare_param("min_samples_split", std::int64_t{2});
    declare_param("min_samples_leaf", std::int64_t{1});
    declare_param("max_features", std::int64_t{0});
    declare_param("seed", std::int64_t{42});
  }

  void fit(const Matrix& X, const std::vector<double>& y) override;
  std::vector<double> predict(const Matrix& X) const override;
  std::unique_ptr<Component> clone() const override {
    return std::make_unique<RandomForestRegressor>(*this);
  }

  std::size_t n_trees() const { return trees_.size(); }

  /// Normalized impurity-decrease importances (sum to 1 when any split
  /// exists). Used by Root Cause Analysis.
  std::vector<double> feature_importances() const;

 private:
  std::vector<CartTree> trees_;
  std::size_t n_features_ = 0;
};

/// Random-forest binary classification; predict() averages the per-tree
/// positive fractions (a score in [0,1]). Same parameters as the regressor.
class RandomForestClassifier final : public Estimator {
 public:
  RandomForestClassifier() : Estimator("randomforestclassifier") {
    declare_param("n_trees", std::int64_t{30});
    declare_param("max_depth", std::int64_t{8});
    declare_param("min_samples_split", std::int64_t{2});
    declare_param("min_samples_leaf", std::int64_t{1});
    declare_param("max_features", std::int64_t{0});
    declare_param("seed", std::int64_t{42});
  }

  void fit(const Matrix& X, const std::vector<double>& y) override;
  std::vector<double> predict(const Matrix& X) const override;
  std::unique_ptr<Component> clone() const override {
    return std::make_unique<RandomForestClassifier>(*this);
  }

  std::size_t n_trees() const { return trees_.size(); }
  std::vector<double> feature_importances() const;

 private:
  std::vector<CartTree> trees_;
  std::size_t n_features_ = 0;
};

}  // namespace coda
