// Gradient boosting (Section III lists gradient boosting among the model
// training techniques): shallow CART trees fit on residuals with shrinkage.
#pragma once

#include <vector>

#include "src/ml/decision_tree.h"

namespace coda {

/// Gradient-boosted regression trees (squared loss). Parameters:
/// n_stages (int, default 100), learning_rate (double, default 0.1),
/// max_depth (int, default 3), min_samples_split (int, default 2),
/// min_samples_leaf (int, default 1), subsample (double, default 1.0),
/// seed (int, default 42).
class GradientBoostingRegressor final : public Estimator {
 public:
  GradientBoostingRegressor() : Estimator("gradientboosting") {
    declare_param("n_stages", std::int64_t{100});
    declare_param("learning_rate", 0.1);
    declare_param("max_depth", std::int64_t{3});
    declare_param("min_samples_split", std::int64_t{2});
    declare_param("min_samples_leaf", std::int64_t{1});
    declare_param("subsample", 1.0);
    declare_param("seed", std::int64_t{42});
  }

  void fit(const Matrix& X, const std::vector<double>& y) override;
  std::vector<double> predict(const Matrix& X) const override;
  std::unique_ptr<Component> clone() const override {
    return std::make_unique<GradientBoostingRegressor>(*this);
  }

  std::size_t n_stages() const { return trees_.size(); }

 private:
  double base_prediction_ = 0.0;
  double learning_rate_ = 0.1;
  std::vector<CartTree> trees_;
};

}  // namespace coda
