#include "src/ml/linalg.h"

#include <cmath>

#include "src/core/kernels.h"

namespace coda {

std::vector<double> solve_linear_system(Matrix a, std::vector<double> b) {
  const std::size_t n = a.rows();
  require(a.cols() == n, "solve_linear_system: matrix not square");
  require(b.size() == n, "solve_linear_system: rhs size mismatch");

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a(r, col)) > std::abs(a(pivot, col))) pivot = r;
    }
    if (std::abs(a(pivot, col)) < 1e-12) {
      throw InvalidArgument("solve_linear_system: singular matrix");
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(col, c), a(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    // Eliminate below.
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a(r, col) / a(col, col);
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a(r, c) -= factor * a(col, c);
      b[r] -= factor * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n);
  for (std::size_t i = n; i-- > 0;) {
    double s = b[i];
    for (std::size_t c = i + 1; c < n; ++c) s -= a(i, c) * x[c];
    x[i] = s / a(i, i);
  }
  return x;
}

std::vector<double> least_squares(const Matrix& X,
                                  const std::vector<double>& y,
                                  double lambda) {
  require(X.rows() == y.size(), "least_squares: X/y size mismatch");
  require(X.rows() > 0, "least_squares: empty input");
  const std::size_t d = X.cols();
  // Normal equations via the kernel layer: XᵀX and Xᵀy in two TN GEMMs
  // (y treated as an n x 1 matrix). Symmetry comes out exact because the
  // mirrored elements sum identical products in identical order.
  Matrix xtx(d, d);
  std::vector<double> xty(d, 0.0);
  kernels::gemm_tn(d, d, X.rows(), X.ptr(), d, X.ptr(), d, xtx.ptr(), d);
  kernels::gemm_tn(d, 1, X.rows(), X.ptr(), d, y.data(), 1, xty.data(), 1);
  for (std::size_t i = 0; i < d; ++i) xtx(i, i) += lambda;
  // Retry with growing ridge when X'X is singular (collinear features) so
  // pipelines containing redundant features still train.
  double extra = 0.0;
  for (int attempt = 0; attempt < 4; ++attempt) {
    try {
      Matrix a = xtx;
      if (extra > 0.0) {
        for (std::size_t i = 0; i < d; ++i) a(i, i) += extra;
      }
      return solve_linear_system(std::move(a), xty);
    } catch (const InvalidArgument&) {
      extra = extra == 0.0 ? 1e-8 : extra * 1e3;
    }
  }
  throw InvalidArgument("least_squares: matrix remained singular");
}

}  // namespace coda
