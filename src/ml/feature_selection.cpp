#include "src/ml/feature_selection.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace coda {
namespace {

// Squared Pearson correlation between column c of X and y; 0 for constant
// columns. Monotone in the univariate regression F-statistic, so ranking by
// it reproduces sklearn's f_regression ordering.
double squared_correlation(const Matrix& X, std::size_t c,
                           const std::vector<double>& y) {
  const std::size_t n = X.rows();
  double mx = 0.0;
  double my = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    mx += X(r, c);
    my += y[r];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    const double dx = X(r, c) - mx;
    const double dy = y[r] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return (sxy * sxy) / (sxx * syy);
}

double column_variance(const Matrix& X, std::size_t c) {
  const std::size_t n = X.rows();
  double mean = 0.0;
  for (std::size_t r = 0; r < n; ++r) mean += X(r, c);
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    const double d = X(r, c) - mean;
    var += d * d;
  }
  return var / static_cast<double>(n);
}

}  // namespace

void SelectKBest::fit(const Matrix& X, const std::vector<double>& y) {
  require(X.rows() > 0, "SelectKBest: empty input");
  const auto k = static_cast<std::size_t>(params().get_int("k"));
  require(k >= 1, "SelectKBest: k must be >= 1");
  require(k <= X.cols(), "SelectKBest: k (" + std::to_string(k) +
                             ") exceeds feature count (" +
                             std::to_string(X.cols()) + ")");
  const std::string& method = params().get_string("score");

  scores_.assign(X.cols(), 0.0);
  for (std::size_t c = 0; c < X.cols(); ++c) {
    if (method == "f_score") {
      require(X.rows() == y.size(), "SelectKBest: needs y for f_score");
      scores_[c] = squared_correlation(X, c, y);
    } else if (method == "variance") {
      scores_[c] = column_variance(X, c);
    } else {
      throw InvalidArgument("SelectKBest: unknown score '" + method + "'");
    }
  }

  std::vector<std::size_t> order(X.cols());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     return scores_[a] > scores_[b];
                   });
  selected_.assign(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k));
  fitted_cols_ = X.cols();
}

Matrix SelectKBest::transform(const Matrix& X) const {
  require_state(!selected_.empty(), "SelectKBest: call fit() first");
  require(X.cols() == fitted_cols_, "SelectKBest: column count mismatch");
  return X.select_cols(selected_);
}

void VarianceThreshold::fit(const Matrix& X, const std::vector<double>&) {
  require(X.rows() > 0, "VarianceThreshold: empty input");
  const double threshold = params().get_double("threshold");
  kept_.clear();
  for (std::size_t c = 0; c < X.cols(); ++c) {
    if (column_variance(X, c) > threshold) kept_.push_back(c);
  }
  require(!kept_.empty(),
          "VarianceThreshold: every feature is below the threshold");
  fitted_cols_ = X.cols();
}

Matrix VarianceThreshold::transform(const Matrix& X) const {
  require_state(fitted_cols_ != 0, "VarianceThreshold: call fit() first");
  require(X.cols() == fitted_cols_, "VarianceThreshold: column mismatch");
  return X.select_cols(kept_);
}

}  // namespace coda
