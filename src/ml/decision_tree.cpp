#include "src/ml/decision_tree.h"

#include <algorithm>
#include <numeric>

namespace coda {
namespace {

double mean_over(const std::vector<double>& y,
                 const std::vector<std::size_t>& indices, std::size_t begin,
                 std::size_t end) {
  double s = 0.0;
  for (std::size_t i = begin; i < end; ++i) s += y[indices[i]];
  return s / static_cast<double>(end - begin);
}

}  // namespace

TreeConfig tree_config_from_params(const ParamMap& params) {
  TreeConfig cfg;
  cfg.max_depth = static_cast<std::size_t>(params.get_int("max_depth"));
  cfg.min_samples_split =
      static_cast<std::size_t>(params.get_int("min_samples_split"));
  cfg.min_samples_leaf =
      static_cast<std::size_t>(params.get_int("min_samples_leaf"));
  require(cfg.max_depth >= 1, "tree: max_depth must be >= 1");
  require(cfg.min_samples_split >= 2, "tree: min_samples_split must be >= 2");
  require(cfg.min_samples_leaf >= 1, "tree: min_samples_leaf must be >= 1");
  return cfg;
}

void CartTree::fit(const Matrix& X, const std::vector<double>& y,
                   const std::vector<std::size_t>& indices,
                   const TreeConfig& cfg, Rng* rng) {
  require(X.rows() == y.size(), "CartTree: X/y size mismatch");
  require(!indices.empty(), "CartTree: no training rows");
  require(cfg.max_features == 0 || rng != nullptr,
          "CartTree: max_features needs an Rng");
  nodes_.clear();
  std::vector<std::size_t> work = indices;
  build(X, y, work, 0, work.size(), 0, cfg, rng);
}

int CartTree::build(const Matrix& X, const std::vector<double>& y,
                    std::vector<std::size_t>& indices, std::size_t begin,
                    std::size_t end, std::size_t depth, const TreeConfig& cfg,
                    Rng* rng) {
  const std::size_t n = end - begin;
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[static_cast<std::size_t>(node_id)].value =
      mean_over(y, indices, begin, end);

  if (depth >= cfg.max_depth || n < cfg.min_samples_split) return node_id;

  // Node impurity (sum of squared deviation) — used for the split gain.
  double sum = 0.0;
  double sum_sq = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    sum += y[indices[i]];
    sum_sq += y[indices[i]] * y[indices[i]];
  }
  const double node_sse = sum_sq - sum * sum / static_cast<double>(n);
  if (node_sse <= 1e-12) return node_id;  // pure node

  // Candidate features: all, or a random subset for forests.
  std::vector<std::size_t> features(X.cols());
  std::iota(features.begin(), features.end(), 0);
  if (cfg.max_features > 0 && cfg.max_features < X.cols()) {
    rng->shuffle(features);
    features.resize(cfg.max_features);
  }

  double best_gain = 0.0;
  std::size_t best_feature = 0;
  double best_threshold = 0.0;
  std::vector<std::size_t> sorted(indices.begin() + static_cast<std::ptrdiff_t>(begin),
                                  indices.begin() + static_cast<std::ptrdiff_t>(end));

  for (const std::size_t f : features) {
    std::sort(sorted.begin(), sorted.end(),
              [&X, f](std::size_t a, std::size_t b) {
                return X(a, f) < X(b, f);
              });
    double left_sum = 0.0;
    double left_sq = 0.0;
    for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
      const double yi = y[sorted[i]];
      left_sum += yi;
      left_sq += yi * yi;
      // Can't split between equal feature values.
      if (X(sorted[i], f) == X(sorted[i + 1], f)) continue;
      const std::size_t n_left = i + 1;
      const std::size_t n_right = sorted.size() - n_left;
      if (n_left < cfg.min_samples_leaf || n_right < cfg.min_samples_leaf) {
        continue;
      }
      const double right_sum = sum - left_sum;
      const double right_sq = sum_sq - left_sq;
      const double left_sse =
          left_sq - left_sum * left_sum / static_cast<double>(n_left);
      const double right_sse =
          right_sq - right_sum * right_sum / static_cast<double>(n_right);
      const double gain = node_sse - left_sse - right_sse;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = f;
        best_threshold = (X(sorted[i], f) + X(sorted[i + 1], f)) / 2.0;
      }
    }
  }

  if (best_gain <= 1e-12) return node_id;

  // Partition indices[begin, end) in place around the chosen split.
  const auto mid_iter = std::partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end),
      [&X, best_feature, best_threshold](std::size_t i) {
        return X(i, best_feature) <= best_threshold;
      });
  const auto mid =
      static_cast<std::size_t>(mid_iter - indices.begin());
  // Degenerate partitions can't happen (gain > 0 implies both sides
  // non-empty), but guard against float pathology anyway.
  if (mid == begin || mid == end) return node_id;

  nodes_[static_cast<std::size_t>(node_id)].feature =
      static_cast<int>(best_feature);
  nodes_[static_cast<std::size_t>(node_id)].threshold = best_threshold;
  nodes_[static_cast<std::size_t>(node_id)].importance = best_gain;
  const int left = build(X, y, indices, begin, mid, depth + 1, cfg, rng);
  const int right = build(X, y, indices, mid, end, depth + 1, cfg, rng);
  nodes_[static_cast<std::size_t>(node_id)].left = left;
  nodes_[static_cast<std::size_t>(node_id)].right = right;
  return node_id;
}

double CartTree::predict_row(const Matrix& X, std::size_t row) const {
  require_state(fitted(), "CartTree: call fit() first");
  std::size_t node = 0;
  for (;;) {
    const Node& n = nodes_[node];
    if (n.feature < 0) return n.value;
    node = static_cast<std::size_t>(
        X(row, static_cast<std::size_t>(n.feature)) <= n.threshold ? n.left
                                                                   : n.right);
  }
}

std::vector<double> CartTree::predict(const Matrix& X) const {
  std::vector<double> out(X.rows());
  for (std::size_t r = 0; r < X.rows(); ++r) out[r] = predict_row(X, r);
  return out;
}

std::size_t CartTree::depth() const {
  if (nodes_.empty()) return 0;
  // Iterative depth computation over the implicit tree.
  std::vector<std::pair<std::size_t, std::size_t>> stack{{0, 1}};
  std::size_t max_depth = 0;
  while (!stack.empty()) {
    const auto [node, depth] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, depth);
    const Node& n = nodes_[node];
    if (n.feature >= 0) {
      stack.emplace_back(static_cast<std::size_t>(n.left), depth + 1);
      stack.emplace_back(static_cast<std::size_t>(n.right), depth + 1);
    }
  }
  return max_depth;
}

void CartTree::add_feature_importances(std::vector<double>& out) const {
  for (const Node& n : nodes_) {
    if (n.feature < 0) continue;
    const auto f = static_cast<std::size_t>(n.feature);
    require(f < out.size(), "CartTree: importance vector too small");
    out[f] += n.importance;
  }
}

void DecisionTreeRegressor::fit(const Matrix& X,
                                const std::vector<double>& y) {
  std::vector<std::size_t> all(X.rows());
  std::iota(all.begin(), all.end(), 0);
  tree_.fit(X, y, all, tree_config_from_params(params()));
}

std::vector<double> DecisionTreeRegressor::predict(const Matrix& X) const {
  return tree_.predict(X);
}

void DecisionTreeClassifier::fit(const Matrix& X,
                                 const std::vector<double>& y) {
  for (const double label : y) {
    require(label == 0.0 || label == 1.0,
            "DecisionTreeClassifier: labels must be 0/1");
  }
  std::vector<std::size_t> all(X.rows());
  std::iota(all.begin(), all.end(), 0);
  tree_.fit(X, y, all, tree_config_from_params(params()));
}

std::vector<double> DecisionTreeClassifier::predict(const Matrix& X) const {
  return tree_.predict(X);
}

}  // namespace coda
