// Small dense linear-algebra helpers for the closed-form estimators.
#pragma once

#include <vector>

#include "src/data/matrix.h"

namespace coda {

/// Solves A x = b by Gaussian elimination with partial pivoting. A must be
/// square and nonsingular (throws InvalidArgument otherwise).
std::vector<double> solve_linear_system(Matrix a, std::vector<double> b);

/// Least-squares fit of X w = y via the ridge-regularized normal equations
/// (X'X + lambda I) w = X'y. An intercept column must already be in X if
/// wanted. lambda = 0 gives ordinary least squares.
std::vector<double> least_squares(const Matrix& X,
                                  const std::vector<double>& y,
                                  double lambda = 0.0);

}  // namespace coda
