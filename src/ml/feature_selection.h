// Feature selection stage options (Table I): SelectKBest and a variance
// threshold filter.
#pragma once

#include <vector>

#include "src/core/component.h"

namespace coda {

/// Keeps the k features with the highest univariate score against the
/// target. Scores: "f_score" (squared Pearson correlation — the regression
/// F-statistic ordering) or "variance" (unsupervised fallback).
///
/// Parameters: k (int, default 5), score (string, default "f_score").
class SelectKBest final : public Transformer {
 public:
  SelectKBest() : Transformer("selectkbest") {
    declare_param("k", std::int64_t{5});
    declare_param("score", std::string("f_score"));
  }

  void fit(const Matrix& X, const std::vector<double>& y) override;
  Matrix transform(const Matrix& X) const override;
  std::unique_ptr<Component> clone() const override {
    return std::make_unique<SelectKBest>(*this);
  }

  /// Indices of the selected features (after fit), best first.
  const std::vector<std::size_t>& selected() const { return selected_; }

  /// The per-feature scores computed during fit (original column order).
  const std::vector<double>& scores() const { return scores_; }

 private:
  std::vector<std::size_t> selected_;
  std::vector<double> scores_;
  std::size_t fitted_cols_ = 0;
};

/// Drops features whose variance on the training data is below `threshold`
/// (double, default 1e-12) — removes constant/near-constant sensors.
class VarianceThreshold final : public Transformer {
 public:
  VarianceThreshold() : Transformer("variancethreshold") {
    declare_param("threshold", 1e-12);
  }

  void fit(const Matrix& X, const std::vector<double>& y) override;
  Matrix transform(const Matrix& X) const override;
  std::unique_ptr<Component> clone() const override {
    return std::make_unique<VarianceThreshold>(*this);
  }

  const std::vector<std::size_t>& kept() const { return kept_; }

 private:
  std::vector<std::size_t> kept_;
  std::size_t fitted_cols_ = 0;
};

}  // namespace coda
