// Feature/data scalers (Table I / Table II, Section IV-C4): StandardScaler,
// MinMaxScaler, and the outlier-aware RobustScaler.
#pragma once

#include <vector>

#include "src/core/component.h"

namespace coda {

/// Standardizes each column to zero mean / unit variance.
class StandardScaler final : public Transformer {
 public:
  StandardScaler() : Transformer("standardscaler") {}

  void fit(const Matrix& X, const std::vector<double>& y) override;
  Matrix transform(const Matrix& X) const override;
  std::unique_ptr<Component> clone() const override {
    return std::make_unique<StandardScaler>(*this);
  }

  const std::vector<double>& means() const { return means_; }
  const std::vector<double>& scales() const { return scales_; }

 private:
  std::vector<double> means_;
  std::vector<double> scales_;
};

/// Rescales each column to [0, 1] based on the training min/max.
class MinMaxScaler final : public Transformer {
 public:
  MinMaxScaler() : Transformer("minmaxscaler") {}

  void fit(const Matrix& X, const std::vector<double>& y) override;
  Matrix transform(const Matrix& X) const override;
  std::unique_ptr<Component> clone() const override {
    return std::make_unique<MinMaxScaler>(*this);
  }

  const std::vector<double>& mins() const { return mins_; }
  const std::vector<double>& ranges() const { return ranges_; }

 private:
  std::vector<double> mins_;
  std::vector<double> ranges_;
};

/// Centers on the median and scales by the interquartile range, so gross
/// outliers do not dominate the scale (the "outlier-aware robust scaler"
/// of Section I).
class RobustScaler final : public Transformer {
 public:
  RobustScaler() : Transformer("robustscaler") {}

  void fit(const Matrix& X, const std::vector<double>& y) override;
  Matrix transform(const Matrix& X) const override;
  std::unique_ptr<Component> clone() const override {
    return std::make_unique<RobustScaler>(*this);
  }

  const std::vector<double>& medians() const { return medians_; }
  const std::vector<double>& iqrs() const { return iqrs_; }

 private:
  std::vector<double> medians_;
  std::vector<double> iqrs_;
};

/// Quantile of a sample (linear interpolation), exposed for RobustScaler
/// tests and the IQR outlier filter. `q` in [0,1].
double quantile(std::vector<double> values, double q);

}  // namespace coda
