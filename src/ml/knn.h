// k-nearest-neighbour models (Section III lists kNN among the training
// techniques and imputation methods).
#pragma once

#include <vector>

#include "src/core/component.h"

namespace coda {

/// kNN regression: mean target of the k closest training rows (Euclidean).
/// Parameter: k (int, default 5).
class KnnRegressor final : public Estimator {
 public:
  KnnRegressor() : Estimator("knnregressor") {
    declare_param("k", std::int64_t{5});
  }

  void fit(const Matrix& X, const std::vector<double>& y) override;
  std::vector<double> predict(const Matrix& X) const override;
  std::unique_ptr<Component> clone() const override {
    return std::make_unique<KnnRegressor>(*this);
  }

 private:
  Matrix train_X_;
  std::vector<double> train_y_;
};

/// Binary kNN classification: predicted score is the fraction of positive
/// labels among the k closest training rows. Parameter: k (int, default 5).
class KnnClassifier final : public Estimator {
 public:
  KnnClassifier() : Estimator("knnclassifier") {
    declare_param("k", std::int64_t{5});
  }

  void fit(const Matrix& X, const std::vector<double>& y) override;
  std::vector<double> predict(const Matrix& X) const override;
  std::unique_ptr<Component> clone() const override {
    return std::make_unique<KnnClassifier>(*this);
  }

 private:
  Matrix train_X_;
  std::vector<double> train_y_;
};

/// Indices of the k training rows nearest to `query` (Euclidean), closest
/// first. Shared by the kNN models and the kNN imputer tests. The span
/// overload lets callers pass a Matrix row view (Matrix::row_span) without
/// copying the row out first.
std::vector<std::size_t> k_nearest(const Matrix& train,
                                   Matrix::ConstSpan query, std::size_t k);
std::vector<std::size_t> k_nearest(const Matrix& train,
                                   const std::vector<double>& query,
                                   std::size_t k);

}  // namespace coda
