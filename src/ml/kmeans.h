// K-means clustering — the substrate for the Cohort Analysis solution
// template (§IV-E: group assets with similar behaviour into cohorts).
#pragma once

#include <cstdint>
#include <vector>

#include "src/data/matrix.h"

namespace coda {

/// K-means with k-means++ seeding and Lloyd iterations.
class KMeans {
 public:
  struct Config {
    std::size_t k = 3;
    std::size_t max_iterations = 100;
    double tolerance = 1e-6;  ///< stop when centroids move less than this
    std::uint64_t seed = 42;
  };

  KMeans();  ///< default Config
  explicit KMeans(Config config);

  /// Clusters the rows of X. Returns per-row cluster assignments.
  std::vector<std::size_t> fit(const Matrix& X);

  /// Assigns new rows to the nearest learned centroid.
  std::vector<std::size_t> assign(const Matrix& X) const;

  const Matrix& centroids() const { return centroids_; }

  /// Total within-cluster sum of squared distances of the last fit.
  double inertia() const { return inertia_; }

  std::size_t iterations_run() const { return iterations_run_; }

 private:
  std::size_t nearest_centroid(const Matrix& X, std::size_t row) const;

  Config config_;
  Matrix centroids_;
  double inertia_ = 0.0;
  std::size_t iterations_run_ = 0;
};

}  // namespace coda
