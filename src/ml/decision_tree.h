// CART decision trees (Table I / Fig 3 "DecisionTree" node).
//
// One tree implementation serves regression and binary classification: the
// split criterion is within-node variance reduction, which for 0/1 labels
// equals the Gini criterion up to a constant factor, and leaves predict the
// mean target (= positive-class probability for binary labels).
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/component.h"
#include "src/util/random.h"

namespace coda {

/// Tree growth limits shared by the estimators and the ensembles.
struct TreeConfig {
  std::size_t max_depth = 6;
  std::size_t min_samples_split = 2;
  std::size_t min_samples_leaf = 1;
  /// Candidate features per split; 0 means all (set by RandomForest).
  std::size_t max_features = 0;
};

/// A fitted CART tree. Not a Component itself — wrapped by the estimator
/// classes below and reused by RandomForest / GradientBoosting.
class CartTree {
 public:
  /// Fits on the rows of X listed in `indices`. When cfg.max_features > 0 a
  /// random feature subset is drawn per split from `rng`.
  void fit(const Matrix& X, const std::vector<double>& y,
           const std::vector<std::size_t>& indices, const TreeConfig& cfg,
           Rng* rng = nullptr);

  double predict_row(const Matrix& X, std::size_t row) const;
  std::vector<double> predict(const Matrix& X) const;

  bool fitted() const { return !nodes_.empty(); }
  std::size_t n_nodes() const { return nodes_.size(); }
  std::size_t depth() const;

  /// Accumulates this tree's impurity-decrease feature importances into
  /// `out` (size = n_features). Used by Root Cause Analysis (§IV-E).
  void add_feature_importances(std::vector<double>& out) const;

 private:
  struct Node {
    int feature = -1;          // -1 marks a leaf
    double threshold = 0.0;
    double value = 0.0;        // leaf prediction (mean target)
    double importance = 0.0;   // impurity decrease * samples at this split
    int left = -1;
    int right = -1;
  };

  int build(const Matrix& X, const std::vector<double>& y,
            std::vector<std::size_t>& indices, std::size_t begin,
            std::size_t end, std::size_t depth, const TreeConfig& cfg,
            Rng* rng);

  std::vector<Node> nodes_;
};

/// Decision-tree regression. Parameters: max_depth (int, default 6),
/// min_samples_split (int, default 2), min_samples_leaf (int, default 1).
class DecisionTreeRegressor final : public Estimator {
 public:
  DecisionTreeRegressor() : Estimator("decisiontree") {
    declare_param("max_depth", std::int64_t{6});
    declare_param("min_samples_split", std::int64_t{2});
    declare_param("min_samples_leaf", std::int64_t{1});
  }

  void fit(const Matrix& X, const std::vector<double>& y) override;
  std::vector<double> predict(const Matrix& X) const override;
  std::unique_ptr<Component> clone() const override {
    return std::make_unique<DecisionTreeRegressor>(*this);
  }

  const CartTree& tree() const { return tree_; }

 private:
  CartTree tree_;
};

/// Decision-tree binary classification; predict() returns the positive
/// fraction at the reached leaf. Same parameters as the regressor.
class DecisionTreeClassifier final : public Estimator {
 public:
  DecisionTreeClassifier() : Estimator("decisiontreeclassifier") {
    declare_param("max_depth", std::int64_t{6});
    declare_param("min_samples_split", std::int64_t{2});
    declare_param("min_samples_leaf", std::int64_t{1});
  }

  void fit(const Matrix& X, const std::vector<double>& y) override;
  std::vector<double> predict(const Matrix& X) const override;
  std::unique_ptr<Component> clone() const override {
    return std::make_unique<DecisionTreeClassifier>(*this);
  }

  const CartTree& tree() const { return tree_; }

 private:
  CartTree tree_;
};

/// Reads the shared tree parameters out of a component's ParamMap.
TreeConfig tree_config_from_params(const ParamMap& params);

}  // namespace coda
