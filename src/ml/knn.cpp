#include "src/ml/knn.h"

#include <algorithm>
#include <numeric>

namespace coda {

std::vector<std::size_t> k_nearest(const Matrix& train,
                                   Matrix::ConstSpan query, std::size_t k) {
  require(train.rows() > 0, "k_nearest: empty training data");
  require(train.cols() == query.size(), "k_nearest: dimension mismatch");
  require(k >= 1, "k_nearest: k must be >= 1");
  k = std::min(k, train.rows());

  std::vector<double> dist(train.rows());
  for (std::size_t r = 0; r < train.rows(); ++r) {
    const double* row = train.row_ptr(r);
    double s = 0.0;
    for (std::size_t c = 0; c < train.cols(); ++c) {
      const double d = row[c] - query[c];
      s += d * d;
    }
    dist[r] = s;
  }
  std::vector<std::size_t> order(train.rows());
  std::iota(order.begin(), order.end(), 0);
  std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k),
                    order.end(), [&dist](std::size_t a, std::size_t b) {
                      return dist[a] < dist[b];
                    });
  order.resize(k);
  return order;
}

std::vector<std::size_t> k_nearest(const Matrix& train,
                                   const std::vector<double>& query,
                                   std::size_t k) {
  return k_nearest(train, Matrix::ConstSpan(query.data(), query.size()), k);
}

namespace {

std::vector<double> knn_predict(const Matrix& train_X,
                                const std::vector<double>& train_y,
                                const Matrix& X, std::size_t k) {
  std::vector<double> out(X.rows());
  for (std::size_t r = 0; r < X.rows(); ++r) {
    const auto nn = k_nearest(train_X, X.row_span(r), k);
    double s = 0.0;
    for (const std::size_t i : nn) s += train_y[i];
    out[r] = s / static_cast<double>(nn.size());
  }
  return out;
}

}  // namespace

void KnnRegressor::fit(const Matrix& X, const std::vector<double>& y) {
  require(X.rows() == y.size(), "KnnRegressor: X/y size mismatch");
  require(X.rows() > 0, "KnnRegressor: empty input");
  train_X_ = X;
  train_y_ = y;
}

std::vector<double> KnnRegressor::predict(const Matrix& X) const {
  require_state(train_X_.rows() > 0, "KnnRegressor: call fit() first");
  return knn_predict(train_X_, train_y_, X,
                     static_cast<std::size_t>(params().get_int("k")));
}

void KnnClassifier::fit(const Matrix& X, const std::vector<double>& y) {
  require(X.rows() == y.size(), "KnnClassifier: X/y size mismatch");
  require(X.rows() > 0, "KnnClassifier: empty input");
  train_X_ = X;
  train_y_ = y;
}

std::vector<double> KnnClassifier::predict(const Matrix& X) const {
  require_state(train_X_.rows() > 0, "KnnClassifier: call fit() first");
  // Mean of binary labels == positive fraction == P(label = 1).
  return knn_predict(train_X_, train_y_, X,
                     static_cast<std::size_t>(params().get_int("k")));
}

}  // namespace coda
