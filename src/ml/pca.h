// Principal component analysis (Table I "Feature Transformation", Fig 3
// "pca" node): covariance-based PCA with eigen decomposition by cyclic
// Jacobi rotations (exact for the symmetric covariance matrix).
#pragma once

#include <vector>

#include "src/core/component.h"

namespace coda {

/// Projects data onto the top principal components of the training
/// covariance. Parameters: n_components (int, default 2), whiten (bool,
/// default false — divide projected coordinates by sqrt(eigenvalue)).
class PCA final : public Transformer {
 public:
  PCA() : Transformer("pca") {
    declare_param("n_components", std::int64_t{2});
    declare_param("whiten", false);
  }

  void fit(const Matrix& X, const std::vector<double>& y) override;
  Matrix transform(const Matrix& X) const override;
  std::unique_ptr<Component> clone() const override {
    return std::make_unique<PCA>(*this);
  }

  /// Eigenvalues of the training covariance, descending (after fit).
  const std::vector<double>& explained_variance() const {
    return eigenvalues_;
  }

  /// Component matrix: one column per retained component (after fit).
  const Matrix& components() const { return components_; }

 private:
  std::vector<double> means_;
  std::vector<double> eigenvalues_;
  Matrix components_;  // d x n_components
  bool whiten_ = false;
};

/// Eigen decomposition of a symmetric matrix by the cyclic Jacobi method.
/// Returns eigenvalues (descending) and the matching eigenvectors as the
/// columns of `eigenvectors`. Exposed for tests.
void symmetric_eigen(const Matrix& symmetric, std::vector<double>& eigenvalues,
                     Matrix& eigenvectors, std::size_t max_sweeps = 64);

/// Sample covariance matrix (population normalization) of the columns of X.
Matrix covariance_matrix(const Matrix& X);

}  // namespace coda
