#include "src/ml/gradient_boosting.h"

#include <numeric>

namespace coda {

void GradientBoostingRegressor::fit(const Matrix& X,
                                    const std::vector<double>& y) {
  require(X.rows() == y.size(), "GradientBoosting: X/y size mismatch");
  require(X.rows() > 0, "GradientBoosting: empty input");
  const auto n_stages = static_cast<std::size_t>(params().get_int("n_stages"));
  learning_rate_ = params().get_double("learning_rate");
  const double subsample = params().get_double("subsample");
  require(n_stages >= 1, "GradientBoosting: n_stages must be >= 1");
  require(learning_rate_ > 0.0, "GradientBoosting: learning_rate must be > 0");
  require(subsample > 0.0 && subsample <= 1.0,
          "GradientBoosting: subsample must be in (0,1]");
  const TreeConfig tree_cfg = tree_config_from_params(params());
  Rng rng(static_cast<std::uint64_t>(params().get_int("seed")));

  base_prediction_ =
      std::accumulate(y.begin(), y.end(), 0.0) / static_cast<double>(y.size());

  std::vector<double> residuals(y.size());
  std::vector<double> current(y.size(), base_prediction_);
  trees_.clear();
  trees_.reserve(n_stages);
  for (std::size_t stage = 0; stage < n_stages; ++stage) {
    for (std::size_t i = 0; i < y.size(); ++i) {
      residuals[i] = y[i] - current[i];
    }
    // Stochastic boosting: each stage sees a random row subset.
    std::vector<std::size_t> indices;
    if (subsample < 1.0) {
      for (std::size_t i = 0; i < y.size(); ++i) {
        if (rng.bernoulli(subsample)) indices.push_back(i);
      }
      if (indices.empty()) indices.push_back(rng.index(y.size()));
    } else {
      indices.resize(y.size());
      std::iota(indices.begin(), indices.end(), 0);
    }

    CartTree tree;
    tree.fit(X, residuals, indices, tree_cfg);
    for (std::size_t i = 0; i < y.size(); ++i) {
      current[i] += learning_rate_ * tree.predict_row(X, i);
    }
    trees_.push_back(std::move(tree));
  }
}

std::vector<double> GradientBoostingRegressor::predict(
    const Matrix& X) const {
  require_state(!trees_.empty(), "GradientBoosting: call fit() first");
  std::vector<double> out(X.rows(), base_prediction_);
  for (const auto& tree : trees_) {
    for (std::size_t r = 0; r < X.rows(); ++r) {
      out[r] += learning_rate_ * tree.predict_row(X, r);
    }
  }
  return out;
}

}  // namespace coda
