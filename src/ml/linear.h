// Linear models (Table I / Section III): linear regression, ridge
// regression, and logistic regression (binary classification scores).
#pragma once

#include <vector>

#include "src/core/component.h"

namespace coda {

/// Ordinary least-squares linear regression with intercept.
class LinearRegression final : public Estimator {
 public:
  LinearRegression() : Estimator("linearregression") {}

  void fit(const Matrix& X, const std::vector<double>& y) override;
  std::vector<double> predict(const Matrix& X) const override;
  std::unique_ptr<Component> clone() const override {
    return std::make_unique<LinearRegression>(*this);
  }

  /// Learned weights (after fit): one per feature, intercept last.
  const std::vector<double>& coefficients() const { return weights_; }

 private:
  std::vector<double> weights_;
};

/// Ridge regression. Parameter: alpha (double, default 1.0).
class Ridge final : public Estimator {
 public:
  Ridge() : Estimator("ridge") { declare_param("alpha", 1.0); }

  void fit(const Matrix& X, const std::vector<double>& y) override;
  std::vector<double> predict(const Matrix& X) const override;
  std::unique_ptr<Component> clone() const override {
    return std::make_unique<Ridge>(*this);
  }

  const std::vector<double>& coefficients() const { return weights_; }

 private:
  std::vector<double> weights_;
};

/// Binary logistic regression trained by full-batch gradient descent.
/// predict() returns P(label = 1). Parameters: learning_rate (double,
/// default 0.1), epochs (int, default 300), l2 (double, default 1e-4).
class LogisticRegression final : public Estimator {
 public:
  LogisticRegression() : Estimator("logisticregression") {
    declare_param("learning_rate", 0.1);
    declare_param("epochs", std::int64_t{300});
    declare_param("l2", 1e-4);
  }

  void fit(const Matrix& X, const std::vector<double>& y) override;
  std::vector<double> predict(const Matrix& X) const override;
  std::unique_ptr<Component> clone() const override {
    return std::make_unique<LogisticRegression>(*this);
  }

  const std::vector<double>& coefficients() const { return weights_; }

 private:
  std::vector<double> weights_;
};

}  // namespace coda
