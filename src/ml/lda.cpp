#include "src/ml/lda.h"

#include <cmath>
#include <map>

#include "src/ml/pca.h"

namespace coda {

Matrix cholesky(const Matrix& a) {
  const std::size_t n = a.rows();
  require(a.cols() == n, "cholesky: matrix not square");
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      if (i == j) {
        if (sum <= 0.0) {
          throw InvalidArgument("cholesky: matrix not positive definite");
        }
        l(i, i) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }
  return l;
}

std::vector<double> forward_substitute(const Matrix& lower,
                                       const std::vector<double>& b) {
  const std::size_t n = lower.rows();
  require(b.size() == n, "forward_substitute: size mismatch");
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= lower(i, k) * x[k];
    x[i] = sum / lower(i, i);
  }
  return x;
}

std::vector<double> back_substitute_transposed(const Matrix& lower,
                                               const std::vector<double>& b) {
  const std::size_t n = lower.rows();
  require(b.size() == n, "back_substitute_transposed: size mismatch");
  std::vector<double> x(n);
  for (std::size_t i = n; i-- > 0;) {
    double sum = b[i];
    for (std::size_t k = i + 1; k < n; ++k) sum -= lower(k, i) * x[k];
    x[i] = sum / lower(i, i);
  }
  return x;
}

void LinearDiscriminantAnalysis::fit(const Matrix& X,
                                     const std::vector<double>& y) {
  require(X.rows() == y.size(), "LDA: X/y size mismatch");
  require(X.rows() > 0, "LDA: empty input");
  const std::size_t d = X.cols();
  const auto n_components =
      static_cast<std::size_t>(params().get_int("n_components"));
  const double shrinkage = params().get_double("shrinkage");
  require(n_components >= 1, "LDA: n_components must be >= 1");
  require(n_components <= d, "LDA: n_components exceeds feature count");

  // Per-class means and counts.
  std::map<double, std::vector<double>> sums;
  std::map<double, std::size_t> counts;
  for (std::size_t r = 0; r < X.rows(); ++r) {
    auto& s = sums[y[r]];
    if (s.empty()) s.assign(d, 0.0);
    for (std::size_t c = 0; c < d; ++c) s[c] += X(r, c);
    ++counts[y[r]];
  }
  n_classes_ = sums.size();
  require(n_classes_ >= 2, "LDA: needs at least 2 classes");

  std::map<double, std::vector<double>> means;
  for (auto& [label, s] : sums) {
    auto m = s;
    for (double& v : m) v /= static_cast<double>(counts[label]);
    means[label] = std::move(m);
  }
  const auto global_mean = X.col_means();

  // Within-class scatter Sw and between-class scatter Sb.
  Matrix sw(d, d);
  Matrix sb(d, d);
  for (std::size_t r = 0; r < X.rows(); ++r) {
    const auto& m = means[y[r]];
    for (std::size_t i = 0; i < d; ++i) {
      const double di = X(r, i) - m[i];
      for (std::size_t j = i; j < d; ++j) {
        sw(i, j) += di * (X(r, j) - m[j]);
      }
    }
  }
  for (const auto& [label, m] : means) {
    const double weight = static_cast<double>(counts[label]);
    for (std::size_t i = 0; i < d; ++i) {
      const double di = m[i] - global_mean[i];
      for (std::size_t j = i; j < d; ++j) {
        sb(i, j) += weight * di * (m[j] - global_mean[j]);
      }
    }
  }
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      sw(i, j) = sw(j, i);
      sb(i, j) = sb(j, i);
    }
    sw(i, i) += shrinkage;
  }

  // Generalized eigenproblem Sb w = lambda Sw w via whitening:
  // Sw = L L^T; M = L^-1 Sb L^-T is symmetric with the same eigenvalues;
  // eigenvectors map back as w = L^-T u.
  const Matrix l = cholesky(sw);
  // M = L^-1 Sb L^-T, built column by column.
  Matrix m(d, d);
  for (std::size_t col = 0; col < d; ++col) {
    // First solve L z = Sb[:, col].
    const auto z = forward_substitute(l, sb.col(col));
    for (std::size_t row = 0; row < d; ++row) m(row, col) = z[row];
  }
  // Then right-multiply by L^-T: solve row systems — equivalently solve
  // L (M')^T = M^T column-wise.
  Matrix m2(d, d);
  for (std::size_t row = 0; row < d; ++row) {
    const auto z = forward_substitute(l, m.row(row));
    for (std::size_t col = 0; col < d; ++col) m2(row, col) = z[col];
  }
  // Symmetrize against round-off.
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i + 1; j < d; ++j) {
      const double avg = (m2(i, j) + m2(j, i)) / 2.0;
      m2(i, j) = avg;
      m2(j, i) = avg;
    }
  }

  std::vector<double> eigenvalues;
  Matrix u;
  symmetric_eigen(m2, eigenvalues, u);

  components_ = Matrix(d, n_components);
  for (std::size_t comp = 0; comp < n_components; ++comp) {
    const auto w = back_substitute_transposed(l, u.col(comp));
    // Normalize for reproducible scaling.
    double norm = 0.0;
    for (const double v : w) norm += v * v;
    norm = std::sqrt(norm);
    for (std::size_t row = 0; row < d; ++row) {
      components_(row, comp) = norm > 0.0 ? w[row] / norm : w[row];
    }
  }
  fitted_cols_ = d;
}

Matrix LinearDiscriminantAnalysis::transform(const Matrix& X) const {
  require_state(fitted_cols_ != 0, "LDA: call fit() first");
  require(X.cols() == fitted_cols_, "LDA: column count mismatch");
  return X.multiply(components_);
}

}  // namespace coda
