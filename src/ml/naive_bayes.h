// Gaussian Naive Bayes — a fast, interpretable binary classifier option
// for the classification stage (Section II's interpretability discussion
// favours models with simple per-feature reasoning).
#pragma once

#include <vector>

#include "src/core/component.h"

namespace coda {

/// Binary Gaussian NB; predict() returns P(label = 1 | x). Parameter:
/// var_smoothing (double, default 1e-9 — fraction of the largest feature
/// variance added to every class variance).
class GaussianNaiveBayes final : public Estimator {
 public:
  GaussianNaiveBayes() : Estimator("gaussiannb") {
    declare_param("var_smoothing", 1e-9);
  }

  void fit(const Matrix& X, const std::vector<double>& y) override;
  std::vector<double> predict(const Matrix& X) const override;
  std::unique_ptr<Component> clone() const override {
    return std::make_unique<GaussianNaiveBayes>(*this);
  }

 private:
  std::vector<double> mean0_, mean1_, var0_, var1_;
  double log_prior1_ = 0.0;  // log P(1) - log P(0)
  bool fitted_ = false;
};

}  // namespace coda
