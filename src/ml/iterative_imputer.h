// Iterative (MICE-style) imputation — Section III lists "multiple
// imputation by chained equations" among the imputation options. Missing
// cells start at column means, then each incomplete column is repeatedly
// re-imputed from a ridge regression on all other columns until the
// imputed values stabilize.
#pragma once

#include <vector>

#include "src/core/component.h"

namespace coda {

/// Chained-equations imputer. Parameters: sweeps (int, default 5),
/// ridge (double, default 1e-3).
class IterativeImputer final : public Transformer {
 public:
  IterativeImputer() : Transformer("iterativeimputer") {
    declare_param("sweeps", std::int64_t{5});
    declare_param("ridge", 1e-3);
  }

  void fit(const Matrix& X, const std::vector<double>& y) override;
  Matrix transform(const Matrix& X) const override;
  std::unique_ptr<Component> clone() const override {
    return std::make_unique<IterativeImputer>(*this);
  }

 private:
  /// Per-column regression weights (other columns + intercept); empty for
  /// complete columns.
  std::vector<std::vector<double>> column_models_;
  std::vector<double> column_means_;
  std::size_t fitted_cols_ = 0;
};

}  // namespace coda
