#include "src/ml/random_forest.h"

#include <cmath>

namespace coda {
namespace {

struct ForestParams {
  std::size_t n_trees;
  TreeConfig tree;
  std::uint64_t seed;
};

ForestParams forest_params(const ParamMap& params, std::size_t n_features) {
  ForestParams p;
  p.n_trees = static_cast<std::size_t>(params.get_int("n_trees"));
  require(p.n_trees >= 1, "random forest: n_trees must be >= 1");
  p.tree = tree_config_from_params(params);
  auto max_features =
      static_cast<std::size_t>(params.get_int("max_features"));
  if (max_features == 0) {
    max_features = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::sqrt(static_cast<double>(n_features))));
  }
  require(max_features <= n_features,
          "random forest: max_features exceeds feature count");
  p.tree.max_features = max_features;
  p.seed = static_cast<std::uint64_t>(params.get_int("seed"));
  return p;
}

std::vector<CartTree> fit_forest(const Matrix& X,
                                 const std::vector<double>& y,
                                 const ForestParams& p) {
  require(X.rows() == y.size(), "random forest: X/y size mismatch");
  require(X.rows() > 0, "random forest: empty input");
  Rng rng(p.seed);
  std::vector<CartTree> trees(p.n_trees);
  for (auto& tree : trees) {
    // Bootstrap sample (with replacement).
    std::vector<std::size_t> sample(X.rows());
    for (auto& s : sample) s = rng.index(X.rows());
    Rng tree_rng = rng.split();
    tree.fit(X, y, sample, p.tree, &tree_rng);
  }
  return trees;
}

std::vector<double> forest_predict(const std::vector<CartTree>& trees,
                                   const Matrix& X) {
  require_state(!trees.empty(), "random forest: call fit() first");
  std::vector<double> out(X.rows(), 0.0);
  for (const auto& tree : trees) {
    for (std::size_t r = 0; r < X.rows(); ++r) {
      out[r] += tree.predict_row(X, r);
    }
  }
  for (double& v : out) v /= static_cast<double>(trees.size());
  return out;
}

std::vector<double> forest_importances(const std::vector<CartTree>& trees,
                                       std::size_t n_features) {
  std::vector<double> raw(n_features, 0.0);
  for (const auto& tree : trees) tree.add_feature_importances(raw);
  double total = 0.0;
  for (const double v : raw) total += v;
  if (total > 0.0) {
    for (double& v : raw) v /= total;
  }
  return raw;
}

}  // namespace

void RandomForestRegressor::fit(const Matrix& X,
                                const std::vector<double>& y) {
  n_features_ = X.cols();
  trees_ = fit_forest(X, y, forest_params(params(), X.cols()));
}

std::vector<double> RandomForestRegressor::predict(const Matrix& X) const {
  return forest_predict(trees_, X);
}

std::vector<double> RandomForestRegressor::feature_importances() const {
  require_state(!trees_.empty(), "RandomForestRegressor: call fit() first");
  return forest_importances(trees_, n_features_);
}

void RandomForestClassifier::fit(const Matrix& X,
                                 const std::vector<double>& y) {
  for (const double label : y) {
    require(label == 0.0 || label == 1.0,
            "RandomForestClassifier: labels must be 0/1");
  }
  n_features_ = X.cols();
  trees_ = fit_forest(X, y, forest_params(params(), X.cols()));
}

std::vector<double> RandomForestClassifier::predict(const Matrix& X) const {
  return forest_predict(trees_, X);
}

std::vector<double> RandomForestClassifier::feature_importances() const {
  require_state(!trees_.empty(), "RandomForestClassifier: call fit() first");
  return forest_importances(trees_, n_features_);
}

}  // namespace coda
