// Multi-layer perceptron estimators (Fig 3 "MLP Regression" node), built on
// the coda::nn substrate.
#pragma once

#include "src/core/component.h"
#include "src/nn/sequential.h"

namespace coda {

/// MLP regression. Targets are standardized internally so convergence does
/// not depend on the target scale. Parameters: hidden (int, 32),
/// hidden_layers (int, 2), dropout (double, 0.1), epochs (int, 60),
/// batch_size (int, 32), learning_rate (double, 1e-3), seed (int, 42).
class MlpRegressor final : public Estimator {
 public:
  MlpRegressor() : Estimator("mlpregressor") {
    declare_param("hidden", std::int64_t{32});
    declare_param("hidden_layers", std::int64_t{2});
    declare_param("dropout", 0.1);
    declare_param("epochs", std::int64_t{60});
    declare_param("batch_size", std::int64_t{32});
    declare_param("learning_rate", 1e-3);
    declare_param("seed", std::int64_t{42});
  }

  void fit(const Matrix& X, const std::vector<double>& y) override;
  std::vector<double> predict(const Matrix& X) const override;
  std::unique_ptr<Component> clone() const override {
    return std::make_unique<MlpRegressor>(*this);
  }

 private:
  nn::Sequential net_;
  double y_mean_ = 0.0;
  double y_scale_ = 1.0;
  bool fitted_ = false;
};

/// MLP binary classifier; predict() returns P(label = 1) via a terminal
/// sigmoid trained with binary cross-entropy. Same parameters as the
/// regressor.
class MlpClassifier final : public Estimator {
 public:
  MlpClassifier() : Estimator("mlpclassifier") {
    declare_param("hidden", std::int64_t{32});
    declare_param("hidden_layers", std::int64_t{2});
    declare_param("dropout", 0.1);
    declare_param("epochs", std::int64_t{60});
    declare_param("batch_size", std::int64_t{32});
    declare_param("learning_rate", 1e-3);
    declare_param("seed", std::int64_t{42});
  }

  void fit(const Matrix& X, const std::vector<double>& y) override;
  std::vector<double> predict(const Matrix& X) const override;
  std::unique_ptr<Component> clone() const override {
    return std::make_unique<MlpClassifier>(*this);
  }

 private:
  nn::Sequential net_;
  bool fitted_ = false;
};

}  // namespace coda
