#include "src/data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/util/random.h"

namespace coda {

Dataset make_regression(const RegressionConfig& config) {
  require(config.n_informative <= config.n_features,
          "make_regression: n_informative > n_features");
  require(config.n_samples > 0 && config.n_features > 0,
          "make_regression: empty shape");
  Rng rng(config.seed);

  std::vector<double> weights(config.n_features, 0.0);
  for (std::size_t j = 0; j < config.n_informative; ++j) {
    weights[j] = rng.uniform(0.5, 2.0) * (rng.bernoulli(0.5) ? 1.0 : -1.0);
  }

  Dataset d;
  d.name = "synthetic_regression";
  d.X = Matrix(config.n_samples, config.n_features);
  d.y.resize(config.n_samples);
  for (std::size_t j = 0; j < config.n_features; ++j) {
    d.feature_names.push_back("x" + std::to_string(j));
  }

  // Give features different scales so scaling stages matter.
  std::vector<double> scales(config.n_features);
  for (auto& s : scales) s = std::pow(10.0, rng.uniform(-1.0, 2.0));

  for (std::size_t i = 0; i < config.n_samples; ++i) {
    double target = 0.0;
    for (std::size_t j = 0; j < config.n_features; ++j) {
      const double raw = rng.normal();
      d.X(i, j) = raw * scales[j];
      target += weights[j] * raw;
    }
    if (config.nonlinear && config.n_informative >= 2) {
      const double a = d.X(i, 0) / scales[0];
      const double b = d.X(i, 1) / scales[1];
      target += 0.8 * a * b + 0.5 * a * a;
    }
    d.y[i] = target + rng.normal(0.0, config.noise_stddev);
  }
  return d;
}

Dataset make_classification(const ClassificationConfig& config) {
  require(config.n_classes >= 2, "make_classification: need >= 2 classes");
  require(config.n_samples >= config.n_classes,
          "make_classification: too few samples");
  Rng rng(config.seed);

  // Random centroid per class, separated along random directions.
  std::vector<std::vector<double>> centroids(config.n_classes);
  for (auto& c : centroids) {
    c.resize(config.n_features);
    for (auto& v : c) v = rng.normal() * config.class_separation;
  }

  Dataset d;
  d.name = "synthetic_classification";
  d.X = Matrix(config.n_samples, config.n_features);
  d.y.resize(config.n_samples);
  for (std::size_t j = 0; j < config.n_features; ++j) {
    d.feature_names.push_back("f" + std::to_string(j));
  }

  for (std::size_t i = 0; i < config.n_samples; ++i) {
    std::size_t label;
    if (config.n_classes == 2) {
      label = rng.bernoulli(config.positive_fraction) ? 1 : 0;
    } else {
      label = rng.index(config.n_classes);
    }
    d.y[i] = static_cast<double>(label);
    for (std::size_t j = 0; j < config.n_features; ++j) {
      d.X(i, j) = centroids[label][j] + rng.normal();
    }
  }
  return d;
}

TimeSeries make_industrial_series(const IndustrialSeriesConfig& config) {
  require(config.length > 0 && config.n_variables > 0,
          "make_industrial_series: empty shape");
  Rng rng(config.seed);

  Matrix values(config.length, config.n_variables);
  std::vector<std::string> names;
  for (std::size_t v = 0; v < config.n_variables; ++v) {
    names.push_back("sensor" + std::to_string(v));
  }

  // Regime shift timestamps: abrupt level changes shared by all variables.
  std::vector<std::size_t> shift_times;
  for (std::size_t s = 0; s < config.regime_shifts; ++s) {
    shift_times.push_back(
        rng.index(std::max<std::size_t>(1, config.length - 1)) + 1);
  }
  std::sort(shift_times.begin(), shift_times.end());

  for (std::size_t v = 0; v < config.n_variables; ++v) {
    const double phase = rng.uniform(0.0, 2.0 * 3.14159265358979323846);
    const double var_amp =
        config.seasonal_amplitude * rng.uniform(0.6, 1.4);
    double ar_state = 0.0;
    double level = rng.normal(0.0, 1.0);
    std::size_t next_shift = 0;
    for (std::size_t t = 0; t < config.length; ++t) {
      while (next_shift < shift_times.size() && t == shift_times[next_shift]) {
        level += rng.normal(0.0, 2.0);
        ++next_shift;
      }
      ar_state = config.ar_coefficient * ar_state +
                 rng.normal(0.0, config.noise_stddev);
      const double season =
          var_amp * std::sin(2.0 * 3.14159265358979323846 *
                                 static_cast<double>(t) /
                                 static_cast<double>(config.seasonal_period) +
                             phase);
      double x = level + config.trend_slope * static_cast<double>(t) +
                 season + ar_state;
      // Variables 1.. are partially driven by variable 0 (cross-coupling),
      // so multivariate history is genuinely informative.
      if (v > 0 && t > 0) {
        x += config.cross_coupling * values(t - 1, 0);
      }
      values(t, v) = x;
    }
  }
  return TimeSeries(std::move(values), std::move(names));
}

Dataset make_failure_workload(const FailureWorkloadConfig& config) {
  require(config.n_samples > 0 && config.n_sensors > 0,
          "make_failure_workload: empty shape");
  Rng rng(config.seed);

  Dataset d;
  d.name = "failure_workload";
  d.X = Matrix(config.n_samples, config.n_sensors);
  d.y.resize(config.n_samples);
  for (std::size_t j = 0; j < config.n_sensors; ++j) {
    d.feature_names.push_back("sensor" + std::to_string(j));
  }

  // Two sensors carry the degradation signal; the rest are ambient noise.
  const std::size_t s0 = 0;
  const std::size_t s1 = config.n_sensors > 1 ? 1 : 0;
  for (std::size_t i = 0; i < config.n_samples; ++i) {
    const bool failing = rng.bernoulli(config.failure_rate);
    d.y[i] = failing ? 1.0 : 0.0;
    for (std::size_t j = 0; j < config.n_sensors; ++j) {
      d.X(i, j) = rng.normal(10.0, 2.0);
    }
    if (failing) {
      d.X(i, s0) += config.degradation_signal * rng.uniform(0.8, 1.2);
      d.X(i, s1) -= config.degradation_signal * rng.uniform(0.5, 1.0);
    }
  }
  return d;
}

Dataset make_anomaly_workload(const AnomalyWorkloadConfig& config) {
  require(config.n_samples > 0 && config.n_features > 0,
          "make_anomaly_workload: empty shape");
  Rng rng(config.seed);

  Dataset d;
  d.name = "anomaly_workload";
  d.X = Matrix(config.n_samples, config.n_features);
  d.y.resize(config.n_samples);
  for (std::size_t j = 0; j < config.n_features; ++j) {
    d.feature_names.push_back("feature" + std::to_string(j));
  }

  // Normal mode: a tight operating band per feature. Anomalous mode: a
  // random subset of features drifts several stddevs out of band (process
  // upset), the rest stay nominal — so single-feature rules are not enough
  // and the supervised models have something to learn.
  for (std::size_t i = 0; i < config.n_samples; ++i) {
    const bool anomalous = rng.bernoulli(config.anomaly_rate);
    d.y[i] = anomalous ? 1.0 : 0.0;
    for (std::size_t j = 0; j < config.n_features; ++j) {
      d.X(i, j) = rng.normal(5.0, 1.0);
    }
    if (anomalous) {
      const std::size_t drifting =
          1 + rng.index(config.n_features > 2 ? config.n_features / 2 : 1);
      for (std::size_t k = 0; k < drifting; ++k) {
        const std::size_t j = rng.index(config.n_features);
        const double sign = rng.bernoulli(0.5) ? 1.0 : -1.0;
        d.X(i, j) += sign * config.anomaly_magnitude * rng.uniform(0.7, 1.3);
      }
    }
  }
  return d;
}

Dataset make_cohort_workload(const CohortWorkloadConfig& config) {
  require(config.n_cohorts >= 1 && config.n_assets >= config.n_cohorts,
          "make_cohort_workload: bad shape");
  Rng rng(config.seed);

  std::vector<std::vector<double>> centers(config.n_cohorts);
  for (auto& c : centers) {
    c.resize(config.n_metrics);
    for (auto& v : c) v = rng.normal() * config.cohort_separation;
  }

  Dataset d;
  d.name = "cohort_workload";
  d.X = Matrix(config.n_assets, config.n_metrics);
  d.y.resize(config.n_assets);
  for (std::size_t j = 0; j < config.n_metrics; ++j) {
    d.feature_names.push_back("metric" + std::to_string(j));
  }
  for (std::size_t i = 0; i < config.n_assets; ++i) {
    const std::size_t cohort = i % config.n_cohorts;  // balanced cohorts
    d.y[i] = static_cast<double>(cohort);
    for (std::size_t j = 0; j < config.n_metrics; ++j) {
      d.X(i, j) = centers[cohort][j] + rng.normal();
    }
  }
  return d;
}

std::size_t inject_missing(Dataset& d, double fraction, std::uint64_t seed) {
  require(fraction >= 0.0 && fraction <= 1.0,
          "inject_missing: fraction out of range");
  Rng rng(seed);
  std::size_t blanked = 0;
  for (std::size_t i = 0; i < d.X.rows(); ++i) {
    for (std::size_t j = 0; j < d.X.cols(); ++j) {
      if (rng.bernoulli(fraction)) {
        d.X(i, j) = std::numeric_limits<double>::quiet_NaN();
        ++blanked;
      }
    }
  }
  return blanked;
}

std::vector<std::size_t> inject_outliers(Dataset& d, double fraction,
                                         double magnitude,
                                         std::uint64_t seed) {
  require(fraction >= 0.0 && fraction <= 1.0,
          "inject_outliers: fraction out of range");
  require(magnitude > 0.0, "inject_outliers: magnitude must be positive");
  Rng rng(seed);
  // Outliers are placed `magnitude` column standard deviations from the
  // column mean, so they are gross relative to each feature's own scale.
  const auto means = d.X.col_means();
  auto stds = d.X.col_stddevs();
  for (double& s : stds) {
    if (s == 0.0) s = 1.0;
  }
  std::vector<std::size_t> rows;
  for (std::size_t i = 0; i < d.X.rows(); ++i) {
    if (!rng.bernoulli(fraction)) continue;
    const std::size_t j = rng.index(d.X.cols());
    const double sign = rng.bernoulli(0.5) ? 1.0 : -1.0;
    d.X(i, j) = means[j] + sign * magnitude * stds[j];
    rows.push_back(i);
  }
  return rows;
}

}  // namespace coda
