// Synthetic workload generators.
//
// The paper evaluates on proprietary heavy-industry customer data we do not
// have. These generators are the documented substitution (DESIGN.md §2):
// they produce the same *shape* of data — multivariate sensor series with
// trend/seasonality/AR structure and regime shifts, tabular regression and
// classification sets, rare failure labels (class imbalance), and cohort
// structure — so every code path the paper's pipelines exercise is covered.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/data/dataset.h"
#include "src/data/time_series.h"

namespace coda {

/// Configuration for the tabular regression generator.
struct RegressionConfig {
  std::size_t n_samples = 400;
  std::size_t n_features = 12;
  std::size_t n_informative = 6;  ///< features with nonzero weight
  double noise_stddev = 0.5;
  bool nonlinear = true;  ///< add quadratic/interaction terms so tree models
                          ///< and MLPs can beat linear regression
  std::uint64_t seed = 7;
};

/// Generates a regression dataset with known informative features.
Dataset make_regression(const RegressionConfig& config);

/// Configuration for the tabular classification generator.
struct ClassificationConfig {
  std::size_t n_samples = 400;
  std::size_t n_features = 10;
  std::size_t n_classes = 2;
  double class_separation = 2.0;  ///< distance between class centroids
  double positive_fraction = 0.5; ///< for binary: fraction labelled 1
                                  ///< (small values model rare failures)
  std::uint64_t seed = 11;
};

/// Generates a classification dataset as a mixture of Gaussian blobs.
Dataset make_classification(const ClassificationConfig& config);

/// Configuration for the multivariate industrial sensor-series generator.
struct IndustrialSeriesConfig {
  std::size_t n_variables = 4;
  std::size_t length = 600;
  double trend_slope = 0.01;
  double seasonal_amplitude = 1.0;
  std::size_t seasonal_period = 24;  ///< e.g. hourly data, daily cycle
  double ar_coefficient = 0.7;       ///< AR(1) persistence of the noise
  double noise_stddev = 0.25;
  std::size_t regime_shifts = 1;     ///< abrupt level changes (equipment
                                     ///< change / concept drift, §II)
  double cross_coupling = 0.3;       ///< how much variable j>0 follows var 0
  std::uint64_t seed = 13;
};

/// Generates a multivariate industrial time series (Fig 6 shape).
TimeSeries make_industrial_series(const IndustrialSeriesConfig& config);

/// Configuration for the failure-prediction workload (solution template
/// §IV-E: historical sensor data + failure logs, imbalanced labels).
struct FailureWorkloadConfig {
  std::size_t n_samples = 600;
  std::size_t n_sensors = 8;
  double failure_rate = 0.08;  ///< rare failures: class imbalance
  double degradation_signal = 2.5;  ///< sensor drift preceding a failure
  std::uint64_t seed = 17;
};

/// Generates sensor snapshots labelled 1 when a failure is imminent.
Dataset make_failure_workload(const FailureWorkloadConfig& config);

/// Configuration for the cohort workload: per-asset behaviour summaries
/// drawn from `n_cohorts` distinct operating regimes.
struct CohortWorkloadConfig {
  std::size_t n_assets = 120;
  std::size_t n_metrics = 5;
  std::size_t n_cohorts = 3;
  double cohort_separation = 3.0;
  std::uint64_t seed = 19;
};

/// Generates asset behaviour vectors; y holds the true cohort id.
Dataset make_cohort_workload(const CohortWorkloadConfig& config);

/// Configuration for the labelled anomaly workload (solution template
/// §IV-E: normal-operation snapshots plus anomalous-mode rows, for
/// validating/selecting a supervised confirmation model).
struct AnomalyWorkloadConfig {
  std::size_t n_samples = 600;
  std::size_t n_features = 8;
  double anomaly_rate = 0.1;      ///< fraction of rows in the anomalous mode
  double anomaly_magnitude = 4.0; ///< how far anomalous cells drift (in
                                  ///< units of the normal-mode stddev)
  std::uint64_t seed = 23;
};

/// Generates sensor snapshots labelled 1 for anomalous-mode rows: a few
/// features of an anomalous row drift far from the normal operating band.
Dataset make_anomaly_workload(const AnomalyWorkloadConfig& config);

/// Replaces `fraction` of X cells with NaN (missing data, §II) — returns the
/// number of cells blanked.
std::size_t inject_missing(Dataset& d, double fraction, std::uint64_t seed);

/// Plants gross outliers (§II) in `fraction` of the rows: one random cell
/// per chosen row is moved `magnitude` column standard deviations from the
/// column mean. Returns the affected row indices.
std::vector<std::size_t> inject_outliers(Dataset& d, double fraction,
                                         double magnitude,
                                         std::uint64_t seed);

}  // namespace coda
