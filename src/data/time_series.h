// Multivariate time series (Fig 6): L timestamps of v variables.
//
// Stored as an L x v matrix (row = timestamp). The prediction task (Section
// IV-C4) looks at a history window of length p and predicts the next value
// of one target variable.
#pragma once

#include <string>
#include <vector>

#include "src/data/matrix.h"

namespace coda {

/// A multivariate time series. values(t, j) is variable j at timestamp t.
class TimeSeries {
 public:
  TimeSeries() = default;

  TimeSeries(Matrix values, std::vector<std::string> variable_names = {})
      : values_(std::move(values)), names_(std::move(variable_names)) {
    require(names_.empty() || names_.size() == values_.cols(),
            "TimeSeries: variable name count mismatch");
  }

  std::size_t length() const { return values_.rows(); }
  std::size_t n_variables() const { return values_.cols(); }

  const Matrix& values() const { return values_; }
  Matrix& values() { return values_; }

  double at(std::size_t t, std::size_t var) const { return values_.at(t, var); }

  const std::vector<std::string>& variable_names() const { return names_; }

  /// The full trajectory of one variable.
  std::vector<double> variable(std::size_t var) const {
    return values_.col(var);
  }

  /// Sub-series covering timestamps [begin, end).
  TimeSeries slice(std::size_t begin, std::size_t end) const;

 private:
  Matrix values_;
  std::vector<std::string> names_;
};

}  // namespace coda
