#include "src/data/fingerprint.h"

#include "src/util/hash.h"

namespace coda {

std::uint64_t fingerprint(const Matrix& m) {
  Fnv1a h;
  h.update_value(m.rows());
  h.update_value(m.cols());
  h.update(m.data().data(), m.data().size() * sizeof(double));
  return h.digest();
}

std::uint64_t fingerprint(const Dataset& d) {
  Fnv1a h;
  h.update_value(fingerprint(d.X));
  h.update(d.y.data(), d.y.size() * sizeof(double));
  for (const auto& name : d.feature_names) h.update(name);
  return h.digest();
}

std::uint64_t fingerprint(const TimeSeries& ts) {
  Fnv1a h;
  h.update_value(fingerprint(ts.values()));
  for (const auto& name : ts.variable_names()) h.update(name);
  return h.digest();
}

std::string fingerprint_hex(const Dataset& d) {
  return hash_to_hex(fingerprint(d));
}

}  // namespace coda
