// Dense row-major matrix of doubles — the tabular data carrier flowing
// through pipelines (Fig 5: data is transformed as it passes each stage).
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "src/util/error.h"

namespace coda {

/// Dense row-major matrix. Rows are samples, columns are features.
class Matrix {
 public:
  Matrix() = default;

  /// Creates a rows x cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Creates a matrix from nested initializer lists (for tests).
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// Wraps an existing flat row-major buffer.
  Matrix(std::size_t rows, std::size_t cols, std::vector<double> data);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& at(std::size_t r, std::size_t c) {
    check_index(r, c);
    return data_[r * cols_ + c];
  }
  double at(std::size_t r, std::size_t c) const {
    check_index(r, c);
    return data_[r * cols_ + c];
  }

  /// Unchecked access for hot loops.
  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  /// Raw contiguous row-major buffer (what the kernel layer consumes).
  const double* ptr() const { return data_.data(); }
  double* ptr() { return data_.data(); }

  /// Non-owning views over one row (rows are contiguous in the row-major
  /// buffer). Unchecked, like operator(): meant for hot loops that used to
  /// pay a heap-allocating row() copy per access.
  using Span = std::span<double>;
  using ConstSpan = std::span<const double>;
  ConstSpan row_span(std::size_t r) const {
    return ConstSpan(data_.data() + r * cols_, cols_);
  }
  Span row_span(std::size_t r) {
    return Span(data_.data() + r * cols_, cols_);
  }
  const double* row_ptr(std::size_t r) const { return data_.data() + r * cols_; }
  double* row_ptr(std::size_t r) { return data_.data() + r * cols_; }

  /// Reshapes in place, reusing the existing heap buffer when it is large
  /// enough (shrinking never frees). Contents are unspecified afterwards
  /// unless the element count is unchanged — this is a workspace primitive,
  /// not a view.
  void reshape(std::size_t rows, std::size_t cols);

  /// Sets every element to `value`.
  void fill(double value);

  /// Copies row r into a vector.
  std::vector<double> row(std::size_t r) const;

  /// Copies column c into a vector.
  std::vector<double> col(std::size_t c) const;

  /// Overwrites row r from `values` (size must equal cols()).
  void set_row(std::size_t r, const std::vector<double>& values);

  /// Returns the matrix restricted to the given row indices.
  Matrix select_rows(const std::vector<std::size_t>& indices) const;

  /// Copies the indexed rows into `out` (which must be presized to
  /// indices.size() x cols()). The allocation-free core of select_rows(),
  /// used by the trainer's reused batch workspace.
  void gather_rows_into(const std::vector<std::size_t>& indices,
                        Matrix& out) const;

  /// Returns the matrix restricted to the given column indices.
  Matrix select_cols(const std::vector<std::size_t>& indices) const;

  /// Matrix transpose.
  Matrix transposed() const;

  /// Matrix product this * other. Shapes must agree.
  Matrix multiply(const Matrix& other) const;

  /// Per-column mean over rows.
  std::vector<double> col_means() const;

  /// Per-column standard deviation (population) over rows.
  std::vector<double> col_stddevs() const;

  bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
  }

  /// Short human-readable description, e.g. "Matrix(120x4)".
  std::string describe() const;

 private:
  void check_index(std::size_t r, std::size_t c) const {
    if (r >= rows_ || c >= cols_) {
      throw InvalidArgument("Matrix: index (" + std::to_string(r) + "," +
                            std::to_string(c) + ") out of range for " +
                            describe());
    }
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace coda
