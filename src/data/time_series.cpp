#include "src/data/time_series.h"

namespace coda {

TimeSeries TimeSeries::slice(std::size_t begin, std::size_t end) const {
  require(begin <= end && end <= length(),
          "TimeSeries::slice: range out of bounds");
  std::vector<std::size_t> rows;
  rows.reserve(end - begin);
  for (std::size_t t = begin; t < end; ++t) rows.push_back(t);
  return TimeSeries(values_.select_rows(rows), names_);
}

}  // namespace coda
