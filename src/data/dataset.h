// Supervised tabular dataset: feature matrix + target vector + names.
#pragma once

#include <string>
#include <vector>

#include "src/data/matrix.h"

namespace coda {

/// A supervised dataset. For regression `y` holds real targets; for
/// classification it holds class labels encoded as doubles (0, 1, ...).
struct Dataset {
  Matrix X;
  std::vector<double> y;
  std::vector<std::string> feature_names;
  std::string name;

  std::size_t n_samples() const { return X.rows(); }
  std::size_t n_features() const { return X.cols(); }

  /// Restricts the dataset to the given sample indices.
  Dataset select(const std::vector<std::size_t>& indices) const;

  /// Validates internal consistency (X rows == y size, names match cols).
  void validate() const;
};

/// Splits `d` into (train, test) with the first `train_fraction` of a random
/// permutation as training data. Deterministic for a given seed.
std::pair<Dataset, Dataset> train_test_split(const Dataset& d,
                                             double train_fraction,
                                             std::uint64_t seed);

}  // namespace coda
