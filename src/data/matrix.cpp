#include "src/data/matrix.h"

#include <algorithm>
#include <cmath>

#include "src/core/kernels.h"

namespace coda {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    require(row.size() == cols_, "Matrix: ragged initializer list");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  require(data_.size() == rows * cols,
          "Matrix: buffer size does not match rows*cols");
}

std::vector<double> Matrix::row(std::size_t r) const {
  check_index(r, 0);
  return std::vector<double>(data_.begin() + static_cast<std::ptrdiff_t>(r * cols_),
                             data_.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols_));
}

std::vector<double> Matrix::col(std::size_t c) const {
  check_index(0, c);
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

void Matrix::set_row(std::size_t r, const std::vector<double>& values) {
  check_index(r, 0);
  require(values.size() == cols_, "Matrix::set_row: size mismatch");
  for (std::size_t c = 0; c < cols_; ++c) (*this)(r, c) = values[c];
}

void Matrix::reshape(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
}

void Matrix::fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

Matrix Matrix::select_rows(const std::vector<std::size_t>& indices) const {
  Matrix out(indices.size(), cols_);
  gather_rows_into(indices, out);
  return out;
}

void Matrix::gather_rows_into(const std::vector<std::size_t>& indices,
                              Matrix& out) const {
  require(out.rows() == indices.size() && out.cols() == cols_,
          "Matrix::gather_rows_into: destination shape mismatch");
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::size_t r = indices[i];
    check_index(r, 0);
    std::copy(row_ptr(r), row_ptr(r) + cols_, out.row_ptr(i));
  }
}

Matrix Matrix::select_cols(const std::vector<std::size_t>& indices) const {
  Matrix out(rows_, indices.size());
  for (std::size_t j = 0; j < indices.size(); ++j) {
    const std::size_t c = indices[j];
    check_index(0, c);
    for (std::size_t r = 0; r < rows_; ++r) out(r, j) = (*this)(r, c);
  }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

Matrix Matrix::multiply(const Matrix& other) const {
  require(cols_ == other.rows_, "Matrix::multiply: inner dimension mismatch");
  Matrix out(rows_, other.cols_);
  kernels::gemm_nn(rows_, other.cols_, cols_, data_.data(), cols_,
                   other.data_.data(), other.cols_, out.data_.data(),
                   out.cols_);
  return out;
}

std::vector<double> Matrix::col_means() const {
  std::vector<double> means(cols_, 0.0);
  if (rows_ == 0) return means;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) means[c] += (*this)(r, c);
  }
  for (double& m : means) m /= static_cast<double>(rows_);
  return means;
}

std::vector<double> Matrix::col_stddevs() const {
  std::vector<double> sds(cols_, 0.0);
  if (rows_ == 0) return sds;
  const auto means = col_means();
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      const double d = (*this)(r, c) - means[c];
      sds[c] += d * d;
    }
  }
  for (double& s : sds) s = std::sqrt(s / static_cast<double>(rows_));
  return sds;
}

std::string Matrix::describe() const {
  return "Matrix(" + std::to_string(rows_) + "x" + std::to_string(cols_) + ")";
}

}  // namespace coda
