// Dataset fingerprinting.
//
// The DARR (Section III) keys shared analytics results by the data they were
// computed on. Two clients holding identical data must derive the same key,
// so the fingerprint hashes content (shape + bit patterns), not identity.
#pragma once

#include <cstdint>
#include <string>

#include "src/data/dataset.h"
#include "src/data/time_series.h"

namespace coda {

/// Stable content hash of a matrix (shape + values).
std::uint64_t fingerprint(const Matrix& m);

/// Stable content hash of a dataset (X, y, names).
std::uint64_t fingerprint(const Dataset& d);

/// Stable content hash of a time series.
std::uint64_t fingerprint(const TimeSeries& ts);

/// Hex rendering used in DARR record keys.
std::string fingerprint_hex(const Dataset& d);

}  // namespace coda
