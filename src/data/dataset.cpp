#include "src/data/dataset.h"

#include "src/util/random.h"

namespace coda {

Dataset Dataset::select(const std::vector<std::size_t>& indices) const {
  Dataset out;
  out.X = X.select_rows(indices);
  out.y.reserve(indices.size());
  for (const std::size_t i : indices) {
    require(i < y.size(), "Dataset::select: index out of range");
    out.y.push_back(y[i]);
  }
  out.feature_names = feature_names;
  out.name = name;
  return out;
}

void Dataset::validate() const {
  require(X.rows() == y.size(),
          "Dataset: X rows (" + std::to_string(X.rows()) +
              ") != y size (" + std::to_string(y.size()) + ")");
  require(feature_names.empty() || feature_names.size() == X.cols(),
          "Dataset: feature_names size does not match X cols");
}

std::pair<Dataset, Dataset> train_test_split(const Dataset& d,
                                             double train_fraction,
                                             std::uint64_t seed) {
  require(train_fraction > 0.0 && train_fraction < 1.0,
          "train_test_split: fraction must be in (0,1)");
  Rng rng(seed);
  auto perm = rng.permutation(d.n_samples());
  const auto n_train = static_cast<std::size_t>(
      static_cast<double>(d.n_samples()) * train_fraction);
  require(n_train > 0 && n_train < d.n_samples(),
          "train_test_split: split leaves an empty side");
  std::vector<std::size_t> train_idx(perm.begin(),
                                     perm.begin() + static_cast<std::ptrdiff_t>(n_train));
  std::vector<std::size_t> test_idx(perm.begin() + static_cast<std::ptrdiff_t>(n_train),
                                    perm.end());
  return {d.select(train_idx), d.select(test_idx)};
}

}  // namespace coda
