// Root Cause Analysis (§IV-E): "a better understanding into the statistical
// reasons for favourable and unfavourable outcomes". Fits an interpretable
// ensemble, ranks contributing factors, and provides the sensitivity and
// what-if analyses Section II calls out (how much does the outcome move
// when a factor moves; what outcome would a changed factor produce).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "src/core/te_graph.h"
#include "src/data/dataset.h"
#include "src/ml/random_forest.h"

namespace coda::templates {

/// Outcome of a root-cause run.
struct RootCauseResult {
  /// (factor, normalized importance) sorted descending.
  std::vector<std::pair<std::string, double>> factor_importance;
  /// Sensitivity of the predicted outcome to a +1 standard deviation move
  /// of each factor, averaged over the data (signed).
  std::vector<std::pair<std::string, double>> sensitivity;
  double model_r2 = 0.0;  ///< in-sample fit quality of the probe model
};

/// The RCA solution template.
class RootCauseAnalysis {
 public:
  struct Config {
    std::size_t n_trees = 60;
    std::size_t max_depth = 8;
    std::uint64_t seed = 42;
  };

  RootCauseAnalysis();
  explicit RootCauseAnalysis(Config config);

  /// The probe-selection search space (scalers × feature selection ×
  /// interpretable regressors), exposed for fleet-scale graph searches:
  /// 3 × 3 × 4 = 36 candidate pipelines over (X = factors, y = outcome),
  /// scored with RMSE. run() keeps its fixed forest probe; this graph is
  /// how a fleet picks the best explanatory model for a given plant.
  static TEGraph search_graph();

  /// `data`: X = process factors, y = outcome (continuous).
  RootCauseResult run(const Dataset& data) const;

  /// What-if analysis: the fitted probe model's predicted outcomes for
  /// `data` when factor `feature` is shifted by `delta` everywhere
  /// (intervention, §II). Call after run() — uses the same configuration.
  std::vector<double> what_if(const Dataset& data, std::size_t feature,
                              double delta) const;

 private:
  RandomForestRegressor make_probe() const;

  Config config_;
};

}  // namespace coda::templates
