#include "src/templates/failure_prediction.h"

#include <algorithm>

#include "src/ml/knn.h"
#include "src/ml/lda.h"
#include "src/ml/linear.h"
#include "src/ml/naive_bayes.h"
#include "src/ml/random_forest.h"
#include "src/ml/scalers.h"

namespace coda::templates {

FailurePredictionAnalysis::FailurePredictionAnalysis()
    : FailurePredictionAnalysis(Config()) {}

FailurePredictionAnalysis::FailurePredictionAnalysis(Config config)
    : config_(config) {
  require(config_.k_folds >= 2, "FailurePredictionAnalysis: k_folds >= 2");
}

TEGraph FailurePredictionAnalysis::search_graph() {
  // The template's opinionated graph: users provide only data.
  TEGraph graph;
  std::vector<std::unique_ptr<Transformer>> scalers;
  scalers.push_back(std::make_unique<StandardScaler>());
  scalers.push_back(std::make_unique<RobustScaler>());
  scalers.push_back(std::make_unique<NoOp>());
  graph.add_feature_scalers(std::move(scalers));

  // Optional supervised projection: LDA concentrates the failure signal
  // into one discriminant direction (Table I lists LDA among the
  // feature-transformation options).
  std::vector<std::unique_ptr<Transformer>> transforms;
  transforms.push_back(std::make_unique<LinearDiscriminantAnalysis>());
  auto noop = std::make_unique<NoOp>();
  noop->set_name("noop_transform");
  transforms.push_back(std::move(noop));
  graph.add_preprocessors("feature_transformation", std::move(transforms));

  std::vector<std::unique_ptr<Estimator>> models;
  models.push_back(std::make_unique<LogisticRegression>());
  models.push_back(std::make_unique<RandomForestClassifier>());
  models.push_back(std::make_unique<KnnClassifier>());
  models.push_back(std::make_unique<GaussianNaiveBayes>());
  graph.add_classification_models(std::move(models));
  return graph;
}

FailurePredictionResult FailurePredictionAnalysis::run(
    const Dataset& data) const {
  data.validate();
  for (const double label : data.y) {
    require(label == 0.0 || label == 1.0,
            "FailurePredictionAnalysis: labels must be 0/1");
  }

  const TEGraph graph = search_graph();

  EvalOptions eval_config;
  eval_config.metric = Metric::kF1;
  eval_config.threads = config_.threads;
  eval_config.search = config_.search;
  eval_config.cache = config_.cache;
  GraphEvaluator evaluator(eval_config);
  KFold cv(config_.k_folds, /*shuffle=*/true, config_.seed);

  FailurePredictionResult result;
  result.search = evaluator.evaluate(graph, data, cv);
  result.best = evaluator.train_best(graph, data, cv);
  result.best_f1 = result.search.best().mean_score;

  // AUC on a held-out split (trained on the train side only).
  const auto [train, test] = train_test_split(data, 0.75, config_.seed);
  Pipeline holdout = result.best;
  holdout.fit(train.X, train.y);
  result.best_auc = auc(test.y, holdout.predict(test.X));

  // Sensor importances from a dedicated forest probe (interpretability,
  // §II: "how much contribution a factor is making").
  RandomForestClassifier forest;
  forest.fit(data.X, data.y);
  const auto importances = forest.feature_importances();
  for (std::size_t j = 0; j < importances.size(); ++j) {
    const std::string name = j < data.feature_names.size()
                                 ? data.feature_names[j]
                                 : "sensor" + std::to_string(j);
    result.top_sensors.emplace_back(name, importances[j]);
  }
  std::sort(result.top_sensors.begin(), result.top_sensors.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return result;
}

}  // namespace coda::templates
