// Anomaly Analysis (§IV-E): "builds a model to flag data as corresponding
// to a normal operation mode or an anomalous mode". A robust detector:
// per-feature modified z-scores (median/MAD, outlier-proof) combined into a
// per-sample anomaly score, thresholded.
#pragma once

#include <vector>

#include "src/core/te_graph.h"
#include "src/data/matrix.h"

namespace coda::templates {

/// Outcome of an anomaly-analysis run.
struct AnomalyResult {
  std::vector<double> scores;           ///< per-row anomaly score (max |z*|)
  std::vector<std::size_t> anomalies;   ///< rows whose score > threshold
  double threshold = 0.0;
};

/// The anomaly-analysis solution template. fit() learns normal-mode
/// statistics; score() flags new data against them.
class AnomalyAnalysis {
 public:
  struct Config {
    /// Modified-z threshold; 3.5 is the standard Iglewicz-Hoaglin cut.
    double z_threshold = 3.5;
  };

  AnomalyAnalysis();
  explicit AnomalyAnalysis(Config config);

  /// The supervised validation search space (robust scaling × outlier
  /// clipping × classifiers over labelled normal/anomalous snapshots —
  /// make_anomaly_workload): 3 × 3 × 4 = 36 candidate pipelines, scored
  /// with F1. The unsupervised median/MAD detector stays the online
  /// scorer; this graph is how a fleet validates and picks the supervised
  /// confirmation model.
  static TEGraph search_graph();

  /// Learns per-feature medians and MADs from normal-operation data.
  void fit(const Matrix& normal_data);

  /// Scores rows of X against the learned normal mode.
  AnomalyResult score(const Matrix& X) const;

  /// Convenience: fit on X and score X itself.
  AnomalyResult fit_score(const Matrix& X);

 private:
  Config config_;
  std::vector<double> medians_;
  std::vector<double> mads_;
};

}  // namespace coda::templates
