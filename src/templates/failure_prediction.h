// Failure Prediction Analysis (§IV-E): "leverage historical sensor data and
// failure logs to build machine learning models to predict imminent
// failures". A facade that assembles a classification TE-Graph (scalers x
// selectors x classifiers), searches it, and reports the best model plus
// the sensors that drive its predictions.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "src/core/evaluator.h"
#include "src/data/dataset.h"

namespace coda::templates {

/// Outcome of a failure-prediction run.
struct FailurePredictionResult {
  EvaluationReport search;   ///< every candidate's cross-validated score
  Pipeline best;             ///< best pipeline, trained on all data
  double best_f1 = 0.0;      ///< CV mean F1 of the best pipeline
  double best_auc = 0.0;     ///< AUC of the best pipeline on held-out data
  /// (sensor name, importance) sorted descending — which sensors predict
  /// failure (from a random-forest importance probe).
  std::vector<std::pair<std::string, double>> top_sensors;
};

/// The FPA solution template.
class FailurePredictionAnalysis {
 public:
  struct Config {
    std::size_t k_folds = 5;
    std::size_t threads = 0;
    std::uint64_t seed = 42;
    /// Candidate-racing strategy for the template's graph search
    /// (default exhaustive; kHalving prunes losing pipelines early —
    /// DESIGN.md §16).
    SearchOptions search;
    /// Optional cooperative result cache shared with fleet peers.
    ResultCache* cache = nullptr;
  };

  FailurePredictionAnalysis();
  explicit FailurePredictionAnalysis(Config config);

  /// The template's opinionated search space (scalers × supervised
  /// projection × classifiers), exposed so benches and the chaos harness
  /// can race it at fleet scale: 3 × 2 × 4 = 24 candidate pipelines.
  static TEGraph search_graph();

  /// `data` must be a binary dataset: X = sensor readings, y = 1 for
  /// samples preceding a failure (from the failure logs).
  FailurePredictionResult run(const Dataset& data) const;

 private:
  Config config_;
};

}  // namespace coda::templates
