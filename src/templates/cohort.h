// Cohort Analysis (§IV-E): "leverages historical sensor data from multiple
// assets ... assets are grouped in different buckets or cohorts". K-means
// over per-asset behaviour vectors, with automatic k selection by the elbow
// criterion when k is not given.
#pragma once

#include <vector>

#include "src/data/dataset.h"
#include "src/ml/kmeans.h"

namespace coda::templates {

/// Outcome of a cohort-analysis run.
struct CohortResult {
  std::vector<std::size_t> assignments;  ///< cohort id per asset
  Matrix centroids;                      ///< cohort behaviour profiles
  std::vector<std::size_t> cohort_sizes;
  double inertia = 0.0;
  std::size_t k = 0;
  /// Inertia per candidate k when k was auto-selected (empty otherwise).
  std::vector<std::pair<std::size_t, double>> k_scan;
};

/// The cohort-analysis solution template.
class CohortAnalysis {
 public:
  struct Config {
    std::size_t k = 0;        ///< 0 = auto-select in [2, max_k]
    std::size_t max_k = 8;
    std::uint64_t seed = 42;
  };

  CohortAnalysis();
  explicit CohortAnalysis(Config config);

  /// X rows = per-asset behaviour summaries (metrics).
  CohortResult run(const Matrix& assets) const;

 private:
  std::size_t select_k(const Matrix& assets,
                       std::vector<std::pair<std::size_t, double>>& scan) const;

  Config config_;
};

}  // namespace coda::templates
