// Cohort Analysis (§IV-E): "leverages historical sensor data from multiple
// assets ... assets are grouped in different buckets or cohorts". K-means
// over per-asset behaviour vectors, with automatic k selection by the elbow
// criterion when k is not given.
#pragma once

#include <vector>

#include "src/core/te_graph.h"
#include "src/data/dataset.h"
#include "src/ml/kmeans.h"

namespace coda::templates {

/// Outcome of a cohort-analysis run.
struct CohortResult {
  std::vector<std::size_t> assignments;  ///< cohort id per asset
  Matrix centroids;                      ///< cohort behaviour profiles
  std::vector<std::size_t> cohort_sizes;
  double inertia = 0.0;
  std::size_t k = 0;
  /// Inertia per candidate k when k was auto-selected (empty otherwise).
  std::vector<std::pair<std::size_t, double>> k_scan;
};

/// The cohort-analysis solution template.
class CohortAnalysis {
 public:
  struct Config {
    std::size_t k = 0;        ///< 0 = auto-select in [2, max_k]
    std::size_t max_k = 8;
    std::uint64_t seed = 42;
  };

  CohortAnalysis();
  explicit CohortAnalysis(Config config);

  /// The cohort-membership search space (scalers × projection ×
  /// classifiers): 3 × 2 × 4 = 24 candidate pipelines over a binary
  /// membership dataset (see membership_dataset), scored with accuracy.
  /// The clustering in run() discovers cohorts; this graph is how a fleet
  /// picks the model that assigns *new* assets to a discovered cohort.
  static TEGraph search_graph();

  /// Binarizes a cohort workload (y = cohort id, e.g. from
  /// make_cohort_workload) into a membership task: y = 1 when the asset
  /// belongs to `cohort`, else 0. The library's classification metrics are
  /// binary, so the search graph races one-vs-rest membership models.
  static Dataset membership_dataset(const Dataset& cohorts,
                                    std::size_t cohort);

  /// X rows = per-asset behaviour summaries (metrics).
  CohortResult run(const Matrix& assets) const;

 private:
  std::size_t select_k(const Matrix& assets,
                       std::vector<std::pair<std::size_t, double>>& scan) const;

  Config config_;
};

}  // namespace coda::templates
