#include "src/templates/cohort.h"

#include <memory>

#include "src/ml/decision_tree.h"
#include "src/ml/knn.h"
#include "src/ml/linear.h"
#include "src/ml/naive_bayes.h"
#include "src/ml/pca.h"
#include "src/ml/scalers.h"
#include "src/util/error.h"

namespace coda::templates {

TEGraph CohortAnalysis::search_graph() {
  TEGraph graph;
  std::vector<std::unique_ptr<Transformer>> scalers;
  scalers.push_back(std::make_unique<StandardScaler>());
  scalers.push_back(std::make_unique<MinMaxScaler>());
  scalers.push_back(std::make_unique<NoOp>());
  graph.add_feature_scalers(std::move(scalers));

  std::vector<std::unique_ptr<Transformer>> projections;
  projections.push_back(std::make_unique<PCA>());
  auto noop = std::make_unique<NoOp>();
  noop->set_name("noop_projection");
  projections.push_back(std::move(noop));
  graph.add_preprocessors("projection", std::move(projections));

  std::vector<std::unique_ptr<Estimator>> models;
  models.push_back(std::make_unique<LogisticRegression>());
  models.push_back(std::make_unique<KnnClassifier>());
  models.push_back(std::make_unique<DecisionTreeClassifier>());
  models.push_back(std::make_unique<GaussianNaiveBayes>());
  graph.add_classification_models(std::move(models));
  return graph;
}

Dataset CohortAnalysis::membership_dataset(const Dataset& cohorts,
                                           std::size_t cohort) {
  Dataset members = cohorts;
  for (double& label : members.y) {
    label = label == static_cast<double>(cohort) ? 1.0 : 0.0;
  }
  return members;
}

CohortAnalysis::CohortAnalysis() : CohortAnalysis(Config()) {}

CohortAnalysis::CohortAnalysis(Config config) : config_(config) {
  require(config_.max_k >= 2, "CohortAnalysis: max_k must be >= 2");
}

std::size_t CohortAnalysis::select_k(
    const Matrix& assets,
    std::vector<std::pair<std::size_t, double>>& scan) const {
  // Elbow criterion: largest relative drop in inertia when going k-1 -> k.
  const std::size_t upper =
      std::min(config_.max_k, assets.rows() >= 2 ? assets.rows() : 2);
  std::vector<double> inertias;
  for (std::size_t k = 1; k <= upper; ++k) {
    KMeans::Config cfg;
    cfg.k = k;
    cfg.seed = config_.seed;
    KMeans km(cfg);
    km.fit(assets);
    inertias.push_back(km.inertia());
    scan.emplace_back(k, km.inertia());
  }
  std::size_t best_k = 2;
  double best_drop = -1.0;
  for (std::size_t k = 2; k <= upper; ++k) {
    const double prev = inertias[k - 2];
    const double cur = inertias[k - 1];
    const double drop = prev > 0.0 ? (prev - cur) / prev : 0.0;
    if (drop > best_drop) {
      best_drop = drop;
      best_k = k;
    }
  }
  return best_k;
}

CohortResult CohortAnalysis::run(const Matrix& assets) const {
  require(assets.rows() >= 2, "CohortAnalysis: need at least 2 assets");
  CohortResult result;
  std::size_t k = config_.k;
  if (k == 0) {
    k = select_k(assets, result.k_scan);
  }
  require(k >= 1 && k <= assets.rows(),
          "CohortAnalysis: k out of range for the asset count");

  KMeans::Config cfg;
  cfg.k = k;
  cfg.seed = config_.seed;
  KMeans km(cfg);
  result.assignments = km.fit(assets);
  result.centroids = km.centroids();
  result.inertia = km.inertia();
  result.k = k;
  result.cohort_sizes.assign(k, 0);
  for (const std::size_t a : result.assignments) ++result.cohort_sizes[a];
  return result;
}

}  // namespace coda::templates
