#include "src/templates/root_cause.h"

#include <algorithm>
#include <memory>

#include "src/core/metrics.h"
#include "src/ml/decision_tree.h"
#include "src/ml/feature_selection.h"
#include "src/ml/knn.h"
#include "src/ml/linear.h"
#include "src/ml/scalers.h"

namespace coda::templates {
namespace {

std::string factor_name(const Dataset& data, std::size_t j) {
  return j < data.feature_names.size() ? data.feature_names[j]
                                       : "factor" + std::to_string(j);
}

}  // namespace

RootCauseAnalysis::RootCauseAnalysis() : RootCauseAnalysis(Config()) {}

RootCauseAnalysis::RootCauseAnalysis(Config config) : config_(config) {}

TEGraph RootCauseAnalysis::search_graph() {
  TEGraph graph;
  std::vector<std::unique_ptr<Transformer>> scalers;
  scalers.push_back(std::make_unique<StandardScaler>());
  scalers.push_back(std::make_unique<RobustScaler>());
  scalers.push_back(std::make_unique<NoOp>());
  graph.add_feature_scalers(std::move(scalers));

  // Factor screening before the probe: keep only informative factors (or
  // all of them — the NoOp edge keeps the unscreened probe in the race).
  std::vector<std::unique_ptr<Transformer>> selectors;
  selectors.push_back(std::make_unique<SelectKBest>());
  selectors.push_back(std::make_unique<VarianceThreshold>());
  auto noop = std::make_unique<NoOp>();
  noop->set_name("noop_selector");
  selectors.push_back(std::move(noop));
  graph.add_feature_selectors(std::move(selectors));

  std::vector<std::unique_ptr<Estimator>> models;
  models.push_back(std::make_unique<LinearRegression>());
  models.push_back(std::make_unique<Ridge>());
  models.push_back(std::make_unique<DecisionTreeRegressor>());
  models.push_back(std::make_unique<KnnRegressor>());
  graph.add_regression_models(std::move(models));
  return graph;
}

RandomForestRegressor RootCauseAnalysis::make_probe() const {
  RandomForestRegressor forest;
  forest.set_param("n_trees", static_cast<std::int64_t>(config_.n_trees));
  forest.set_param("max_depth", static_cast<std::int64_t>(config_.max_depth));
  forest.set_param("seed", static_cast<std::int64_t>(config_.seed));
  return forest;
}

RootCauseResult RootCauseAnalysis::run(const Dataset& data) const {
  data.validate();
  RandomForestRegressor probe = make_probe();
  probe.fit(data.X, data.y);

  RootCauseResult result;
  result.model_r2 = r2(data.y, probe.predict(data.X));

  const auto importances = probe.feature_importances();
  for (std::size_t j = 0; j < importances.size(); ++j) {
    result.factor_importance.emplace_back(factor_name(data, j),
                                          importances[j]);
  }
  std::sort(result.factor_importance.begin(), result.factor_importance.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });

  // Sensitivity: mean prediction shift when factor j moves +1 stddev.
  const auto baseline = probe.predict(data.X);
  const auto stddevs = data.X.col_stddevs();
  for (std::size_t j = 0; j < data.n_features(); ++j) {
    Matrix shifted = data.X;
    for (std::size_t r = 0; r < shifted.rows(); ++r) {
      shifted(r, j) += stddevs[j];
    }
    const auto moved = probe.predict(shifted);
    double delta = 0.0;
    for (std::size_t r = 0; r < moved.size(); ++r) {
      delta += moved[r] - baseline[r];
    }
    delta /= static_cast<double>(moved.size());
    result.sensitivity.emplace_back(factor_name(data, j), delta);
  }
  std::sort(result.sensitivity.begin(), result.sensitivity.end(),
            [](const auto& a, const auto& b) {
              return std::abs(a.second) > std::abs(b.second);
            });
  return result;
}

std::vector<double> RootCauseAnalysis::what_if(const Dataset& data,
                                               std::size_t feature,
                                               double delta) const {
  data.validate();
  require(feature < data.n_features(), "what_if: feature out of range");
  RandomForestRegressor probe = make_probe();
  probe.fit(data.X, data.y);
  Matrix shifted = data.X;
  for (std::size_t r = 0; r < shifted.rows(); ++r) {
    shifted(r, feature) += delta;
  }
  return probe.predict(shifted);
}

}  // namespace coda::templates
