#include "src/templates/anomaly.h"

#include <cmath>

#include "src/ml/scalers.h"
#include "src/util/error.h"

namespace coda::templates {

AnomalyAnalysis::AnomalyAnalysis() : AnomalyAnalysis(Config()) {}

AnomalyAnalysis::AnomalyAnalysis(Config config) : config_(config) {
  require(config_.z_threshold > 0.0,
          "AnomalyAnalysis: threshold must be positive");
}

void AnomalyAnalysis::fit(const Matrix& normal_data) {
  require(normal_data.rows() > 0, "AnomalyAnalysis: empty input");
  medians_.assign(normal_data.cols(), 0.0);
  mads_.assign(normal_data.cols(), 1.0);
  for (std::size_t c = 0; c < normal_data.cols(); ++c) {
    auto col = normal_data.col(c);
    medians_[c] = quantile(col, 0.5);
    std::vector<double> abs_dev(col.size());
    for (std::size_t r = 0; r < col.size(); ++r) {
      abs_dev[r] = std::abs(col[r] - medians_[c]);
    }
    const double mad = quantile(abs_dev, 0.5);
    mads_[c] = mad == 0.0 ? 1.0 : mad;
  }
}

AnomalyResult AnomalyAnalysis::score(const Matrix& X) const {
  require_state(!medians_.empty(), "AnomalyAnalysis: call fit() first");
  require(X.cols() == medians_.size(), "AnomalyAnalysis: column mismatch");
  // Modified z-score: 0.6745 (x - median) / MAD (Iglewicz & Hoaglin).
  constexpr double kConsistency = 0.6745;
  AnomalyResult result;
  result.threshold = config_.z_threshold;
  result.scores.resize(X.rows());
  for (std::size_t r = 0; r < X.rows(); ++r) {
    double worst = 0.0;
    for (std::size_t c = 0; c < X.cols(); ++c) {
      const double z =
          std::abs(kConsistency * (X(r, c) - medians_[c]) / mads_[c]);
      worst = std::max(worst, z);
    }
    result.scores[r] = worst;
    if (worst > config_.z_threshold) result.anomalies.push_back(r);
  }
  return result;
}

AnomalyResult AnomalyAnalysis::fit_score(const Matrix& X) {
  fit(X);
  return score(X);
}

}  // namespace coda::templates
