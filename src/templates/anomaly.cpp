#include "src/templates/anomaly.h"

#include <cmath>
#include <memory>

#include "src/ml/knn.h"
#include "src/ml/linear.h"
#include "src/ml/naive_bayes.h"
#include "src/ml/outliers.h"
#include "src/ml/random_forest.h"
#include "src/ml/scalers.h"
#include "src/util/error.h"

namespace coda::templates {

TEGraph AnomalyAnalysis::search_graph() {
  TEGraph graph;
  std::vector<std::unique_ptr<Transformer>> scalers;
  scalers.push_back(std::make_unique<RobustScaler>());
  scalers.push_back(std::make_unique<StandardScaler>());
  scalers.push_back(std::make_unique<NoOp>());
  graph.add_feature_scalers(std::move(scalers));

  // Outlier handling ahead of the classifier: clipping the gross values
  // the detector itself flags can help or hurt the supervised model, so
  // both clippers and the identity edge race.
  std::vector<std::unique_ptr<Transformer>> clippers;
  clippers.push_back(std::make_unique<ZScoreClipper>());
  clippers.push_back(std::make_unique<IqrClipper>());
  auto noop = std::make_unique<NoOp>();
  noop->set_name("noop_clipper");
  clippers.push_back(std::move(noop));
  graph.add_preprocessors("outlier_handling", std::move(clippers));

  std::vector<std::unique_ptr<Estimator>> models;
  models.push_back(std::make_unique<LogisticRegression>());
  models.push_back(std::make_unique<RandomForestClassifier>());
  models.push_back(std::make_unique<KnnClassifier>());
  models.push_back(std::make_unique<GaussianNaiveBayes>());
  graph.add_classification_models(std::move(models));
  return graph;
}

AnomalyAnalysis::AnomalyAnalysis() : AnomalyAnalysis(Config()) {}

AnomalyAnalysis::AnomalyAnalysis(Config config) : config_(config) {
  require(config_.z_threshold > 0.0,
          "AnomalyAnalysis: threshold must be positive");
}

void AnomalyAnalysis::fit(const Matrix& normal_data) {
  require(normal_data.rows() > 0, "AnomalyAnalysis: empty input");
  medians_.assign(normal_data.cols(), 0.0);
  mads_.assign(normal_data.cols(), 1.0);
  for (std::size_t c = 0; c < normal_data.cols(); ++c) {
    auto col = normal_data.col(c);
    medians_[c] = quantile(col, 0.5);
    std::vector<double> abs_dev(col.size());
    for (std::size_t r = 0; r < col.size(); ++r) {
      abs_dev[r] = std::abs(col[r] - medians_[c]);
    }
    const double mad = quantile(abs_dev, 0.5);
    mads_[c] = mad == 0.0 ? 1.0 : mad;
  }
}

AnomalyResult AnomalyAnalysis::score(const Matrix& X) const {
  require_state(!medians_.empty(), "AnomalyAnalysis: call fit() first");
  require(X.cols() == medians_.size(), "AnomalyAnalysis: column mismatch");
  // Modified z-score: 0.6745 (x - median) / MAD (Iglewicz & Hoaglin).
  constexpr double kConsistency = 0.6745;
  AnomalyResult result;
  result.threshold = config_.z_threshold;
  result.scores.resize(X.rows());
  for (std::size_t r = 0; r < X.rows(); ++r) {
    double worst = 0.0;
    for (std::size_t c = 0; c < X.cols(); ++c) {
      const double z =
          std::abs(kConsistency * (X(r, c) - medians_[c]) / mads_[c]);
      worst = std::max(worst, z);
    }
    result.scores[r] = worst;
    if (worst > config_.z_threshold) result.anomalies.push_back(r);
  }
  return result;
}

AnomalyResult AnomalyAnalysis::fit_score(const Matrix& X) {
  fit(X);
  return score(X);
}

}  // namespace coda::templates
