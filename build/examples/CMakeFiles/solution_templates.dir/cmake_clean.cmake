file(REMOVE_RECURSE
  "CMakeFiles/solution_templates.dir/solution_templates.cpp.o"
  "CMakeFiles/solution_templates.dir/solution_templates.cpp.o.d"
  "solution_templates"
  "solution_templates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solution_templates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
