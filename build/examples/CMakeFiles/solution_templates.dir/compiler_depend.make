# Empty compiler generated dependencies file for solution_templates.
# This may be replaced when dependencies are built.
