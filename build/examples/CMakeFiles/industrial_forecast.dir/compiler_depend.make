# Empty compiler generated dependencies file for industrial_forecast.
# This may be replaced when dependencies are built.
