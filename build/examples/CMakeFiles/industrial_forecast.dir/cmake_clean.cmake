file(REMOVE_RECURSE
  "CMakeFiles/industrial_forecast.dir/industrial_forecast.cpp.o"
  "CMakeFiles/industrial_forecast.dir/industrial_forecast.cpp.o.d"
  "industrial_forecast"
  "industrial_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/industrial_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
