file(REMOVE_RECURSE
  "CMakeFiles/cooperative_clients.dir/cooperative_clients.cpp.o"
  "CMakeFiles/cooperative_clients.dir/cooperative_clients.cpp.o.d"
  "cooperative_clients"
  "cooperative_clients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cooperative_clients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
