# Empty dependencies file for cooperative_clients.
# This may be replaced when dependencies are built.
