# Empty dependencies file for bench_table2_timeseries_components.
# This may be replaced when dependencies are built.
