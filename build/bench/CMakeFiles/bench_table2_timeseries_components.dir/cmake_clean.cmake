file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_timeseries_components.dir/bench_table2_timeseries_components.cpp.o"
  "CMakeFiles/bench_table2_timeseries_components.dir/bench_table2_timeseries_components.cpp.o.d"
  "bench_table2_timeseries_components"
  "bench_table2_timeseries_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_timeseries_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
