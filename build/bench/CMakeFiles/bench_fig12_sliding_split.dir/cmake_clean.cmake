file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_sliding_split.dir/bench_fig12_sliding_split.cpp.o"
  "CMakeFiles/bench_fig12_sliding_split.dir/bench_fig12_sliding_split.cpp.o.d"
  "bench_fig12_sliding_split"
  "bench_fig12_sliding_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_sliding_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
