# Empty dependencies file for bench_fig12_sliding_split.
# This may be replaced when dependencies are built.
