# Empty dependencies file for bench_delta_encoding.
# This may be replaced when dependencies are built.
