file(REMOVE_RECURSE
  "CMakeFiles/bench_delta_encoding.dir/bench_delta_encoding.cpp.o"
  "CMakeFiles/bench_delta_encoding.dir/bench_delta_encoding.cpp.o.d"
  "bench_delta_encoding"
  "bench_delta_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_delta_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
