# Empty dependencies file for bench_solution_templates.
# This may be replaced when dependencies are built.
