file(REMOVE_RECURSE
  "CMakeFiles/bench_solution_templates.dir/bench_solution_templates.cpp.o"
  "CMakeFiles/bench_solution_templates.dir/bench_solution_templates.cpp.o.d"
  "bench_solution_templates"
  "bench_solution_templates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_solution_templates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
