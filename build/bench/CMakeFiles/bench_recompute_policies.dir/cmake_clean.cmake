file(REMOVE_RECURSE
  "CMakeFiles/bench_recompute_policies.dir/bench_recompute_policies.cpp.o"
  "CMakeFiles/bench_recompute_policies.dir/bench_recompute_policies.cpp.o.d"
  "bench_recompute_policies"
  "bench_recompute_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_recompute_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
