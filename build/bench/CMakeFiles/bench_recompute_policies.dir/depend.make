# Empty dependencies file for bench_recompute_policies.
# This may be replaced when dependencies are built.
