# Empty dependencies file for bench_fig8_flat_windowing.
# This may be replaced when dependencies are built.
