file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_flat_windowing.dir/bench_fig8_flat_windowing.cpp.o"
  "CMakeFiles/bench_fig8_flat_windowing.dir/bench_fig8_flat_windowing.cpp.o.d"
  "bench_fig8_flat_windowing"
  "bench_fig8_flat_windowing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_flat_windowing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
