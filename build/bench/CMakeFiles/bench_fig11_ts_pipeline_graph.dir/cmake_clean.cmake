file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_ts_pipeline_graph.dir/bench_fig11_ts_pipeline_graph.cpp.o"
  "CMakeFiles/bench_fig11_ts_pipeline_graph.dir/bench_fig11_ts_pipeline_graph.cpp.o.d"
  "bench_fig11_ts_pipeline_graph"
  "bench_fig11_ts_pipeline_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_ts_pipeline_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
