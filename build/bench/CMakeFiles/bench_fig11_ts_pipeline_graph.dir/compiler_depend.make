# Empty compiler generated dependencies file for bench_fig11_ts_pipeline_graph.
# This may be replaced when dependencies are built.
