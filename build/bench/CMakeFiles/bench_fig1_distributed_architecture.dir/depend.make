# Empty dependencies file for bench_fig1_distributed_architecture.
# This may be replaced when dependencies are built.
