file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_distributed_architecture.dir/bench_fig1_distributed_architecture.cpp.o"
  "CMakeFiles/bench_fig1_distributed_architecture.dir/bench_fig1_distributed_architecture.cpp.o.d"
  "bench_fig1_distributed_architecture"
  "bench_fig1_distributed_architecture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_distributed_architecture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
