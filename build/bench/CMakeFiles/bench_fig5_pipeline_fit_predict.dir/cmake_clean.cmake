file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_pipeline_fit_predict.dir/bench_fig5_pipeline_fit_predict.cpp.o"
  "CMakeFiles/bench_fig5_pipeline_fit_predict.dir/bench_fig5_pipeline_fit_predict.cpp.o.d"
  "bench_fig5_pipeline_fit_predict"
  "bench_fig5_pipeline_fit_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_pipeline_fit_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
