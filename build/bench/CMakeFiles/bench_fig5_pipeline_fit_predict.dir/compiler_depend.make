# Empty compiler generated dependencies file for bench_fig5_pipeline_fit_predict.
# This may be replaced when dependencies are built.
