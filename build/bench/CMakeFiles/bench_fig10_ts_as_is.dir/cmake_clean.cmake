file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_ts_as_is.dir/bench_fig10_ts_as_is.cpp.o"
  "CMakeFiles/bench_fig10_ts_as_is.dir/bench_fig10_ts_as_is.cpp.o.d"
  "bench_fig10_ts_as_is"
  "bench_fig10_ts_as_is.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_ts_as_is.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
