# Empty compiler generated dependencies file for bench_fig10_ts_as_is.
# This may be replaced when dependencies are built.
