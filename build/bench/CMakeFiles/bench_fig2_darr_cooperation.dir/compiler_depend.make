# Empty compiler generated dependencies file for bench_fig2_darr_cooperation.
# This may be replaced when dependencies are built.
