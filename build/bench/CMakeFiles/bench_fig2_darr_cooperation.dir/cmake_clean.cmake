file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_darr_cooperation.dir/bench_fig2_darr_cooperation.cpp.o"
  "CMakeFiles/bench_fig2_darr_cooperation.dir/bench_fig2_darr_cooperation.cpp.o.d"
  "bench_fig2_darr_cooperation"
  "bench_fig2_darr_cooperation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_darr_cooperation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
