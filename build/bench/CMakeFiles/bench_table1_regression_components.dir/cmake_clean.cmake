file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_regression_components.dir/bench_table1_regression_components.cpp.o"
  "CMakeFiles/bench_table1_regression_components.dir/bench_table1_regression_components.cpp.o.d"
  "bench_table1_regression_components"
  "bench_table1_regression_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_regression_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
