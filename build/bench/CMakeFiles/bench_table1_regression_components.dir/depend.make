# Empty dependencies file for bench_table1_regression_components.
# This may be replaced when dependencies are built.
