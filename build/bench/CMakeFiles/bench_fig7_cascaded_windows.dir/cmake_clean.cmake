file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_cascaded_windows.dir/bench_fig7_cascaded_windows.cpp.o"
  "CMakeFiles/bench_fig7_cascaded_windows.dir/bench_fig7_cascaded_windows.cpp.o.d"
  "bench_fig7_cascaded_windows"
  "bench_fig7_cascaded_windows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_cascaded_windows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
