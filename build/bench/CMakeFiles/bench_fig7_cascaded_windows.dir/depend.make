# Empty dependencies file for bench_fig7_cascaded_windows.
# This may be replaced when dependencies are built.
