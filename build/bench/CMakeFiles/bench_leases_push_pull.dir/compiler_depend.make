# Empty compiler generated dependencies file for bench_leases_push_pull.
# This may be replaced when dependencies are built.
