file(REMOVE_RECURSE
  "CMakeFiles/bench_leases_push_pull.dir/bench_leases_push_pull.cpp.o"
  "CMakeFiles/bench_leases_push_pull.dir/bench_leases_push_pull.cpp.o.d"
  "bench_leases_push_pull"
  "bench_leases_push_pull.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_leases_push_pull.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
