# Empty compiler generated dependencies file for bench_fig3_regression_graph.
# This may be replaced when dependencies are built.
