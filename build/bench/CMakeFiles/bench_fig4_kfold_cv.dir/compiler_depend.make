# Empty compiler generated dependencies file for bench_fig4_kfold_cv.
# This may be replaced when dependencies are built.
