file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_kfold_cv.dir/bench_fig4_kfold_cv.cpp.o"
  "CMakeFiles/bench_fig4_kfold_cv.dir/bench_fig4_kfold_cv.cpp.o.d"
  "bench_fig4_kfold_cv"
  "bench_fig4_kfold_cv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_kfold_cv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
