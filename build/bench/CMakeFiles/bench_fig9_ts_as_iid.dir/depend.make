# Empty dependencies file for bench_fig9_ts_as_iid.
# This may be replaced when dependencies are built.
