file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_ts_as_iid.dir/bench_fig9_ts_as_iid.cpp.o"
  "CMakeFiles/bench_fig9_ts_as_iid.dir/bench_fig9_ts_as_iid.cpp.o.d"
  "bench_fig9_ts_as_iid"
  "bench_fig9_ts_as_iid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_ts_as_iid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
