file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_multivariate_ts.dir/bench_fig6_multivariate_ts.cpp.o"
  "CMakeFiles/bench_fig6_multivariate_ts.dir/bench_fig6_multivariate_ts.cpp.o.d"
  "bench_fig6_multivariate_ts"
  "bench_fig6_multivariate_ts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_multivariate_ts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
