# Empty dependencies file for bench_fig6_multivariate_ts.
# This may be replaced when dependencies are built.
