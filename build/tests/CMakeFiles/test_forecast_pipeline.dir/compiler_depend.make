# Empty compiler generated dependencies file for test_forecast_pipeline.
# This may be replaced when dependencies are built.
