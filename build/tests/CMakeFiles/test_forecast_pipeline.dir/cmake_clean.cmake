file(REMOVE_RECURSE
  "CMakeFiles/test_forecast_pipeline.dir/test_forecast_pipeline.cpp.o"
  "CMakeFiles/test_forecast_pipeline.dir/test_forecast_pipeline.cpp.o.d"
  "test_forecast_pipeline"
  "test_forecast_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_forecast_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
