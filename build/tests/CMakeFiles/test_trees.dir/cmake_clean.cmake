file(REMOVE_RECURSE
  "CMakeFiles/test_trees.dir/test_trees.cpp.o"
  "CMakeFiles/test_trees.dir/test_trees.cpp.o.d"
  "test_trees"
  "test_trees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
