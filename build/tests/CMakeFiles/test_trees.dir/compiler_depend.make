# Empty compiler generated dependencies file for test_trees.
# This may be replaced when dependencies are built.
