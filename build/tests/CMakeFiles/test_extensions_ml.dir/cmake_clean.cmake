file(REMOVE_RECURSE
  "CMakeFiles/test_extensions_ml.dir/test_extensions_ml.cpp.o"
  "CMakeFiles/test_extensions_ml.dir/test_extensions_ml.cpp.o.d"
  "test_extensions_ml"
  "test_extensions_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_extensions_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
