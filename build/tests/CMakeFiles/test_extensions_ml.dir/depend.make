# Empty dependencies file for test_extensions_ml.
# This may be replaced when dependencies are built.
