# Empty compiler generated dependencies file for test_update_monitor.
# This may be replaced when dependencies are built.
