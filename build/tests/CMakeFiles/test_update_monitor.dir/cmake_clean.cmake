file(REMOVE_RECURSE
  "CMakeFiles/test_update_monitor.dir/test_update_monitor.cpp.o"
  "CMakeFiles/test_update_monitor.dir/test_update_monitor.cpp.o.d"
  "test_update_monitor"
  "test_update_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_update_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
