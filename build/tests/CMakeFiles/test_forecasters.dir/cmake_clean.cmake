file(REMOVE_RECURSE
  "CMakeFiles/test_forecasters.dir/test_forecasters.cpp.o"
  "CMakeFiles/test_forecasters.dir/test_forecasters.cpp.o.d"
  "test_forecasters"
  "test_forecasters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_forecasters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
