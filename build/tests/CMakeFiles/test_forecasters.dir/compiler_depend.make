# Empty compiler generated dependencies file for test_forecasters.
# This may be replaced when dependencies are built.
