file(REMOVE_RECURSE
  "CMakeFiles/test_cooperative.dir/test_cooperative.cpp.o"
  "CMakeFiles/test_cooperative.dir/test_cooperative.cpp.o.d"
  "test_cooperative"
  "test_cooperative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cooperative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
