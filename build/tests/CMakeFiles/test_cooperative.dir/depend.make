# Empty dependencies file for test_cooperative.
# This may be replaced when dependencies are built.
