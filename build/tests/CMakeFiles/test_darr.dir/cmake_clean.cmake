file(REMOVE_RECURSE
  "CMakeFiles/test_darr.dir/test_darr.cpp.o"
  "CMakeFiles/test_darr.dir/test_darr.cpp.o.d"
  "test_darr"
  "test_darr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_darr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
