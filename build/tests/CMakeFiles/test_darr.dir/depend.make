# Empty dependencies file for test_darr.
# This may be replaced when dependencies are built.
