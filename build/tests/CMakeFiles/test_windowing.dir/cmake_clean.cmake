file(REMOVE_RECURSE
  "CMakeFiles/test_windowing.dir/test_windowing.cpp.o"
  "CMakeFiles/test_windowing.dir/test_windowing.cpp.o.d"
  "test_windowing"
  "test_windowing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_windowing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
