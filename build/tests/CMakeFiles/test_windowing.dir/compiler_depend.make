# Empty compiler generated dependencies file for test_windowing.
# This may be replaced when dependencies are built.
