# Empty compiler generated dependencies file for test_client_cache.
# This may be replaced when dependencies are built.
