file(REMOVE_RECURSE
  "CMakeFiles/test_client_cache.dir/test_client_cache.cpp.o"
  "CMakeFiles/test_client_cache.dir/test_client_cache.cpp.o.d"
  "test_client_cache"
  "test_client_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_client_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
