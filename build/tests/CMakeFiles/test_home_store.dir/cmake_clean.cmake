file(REMOVE_RECURSE
  "CMakeFiles/test_home_store.dir/test_home_store.cpp.o"
  "CMakeFiles/test_home_store.dir/test_home_store.cpp.o.d"
  "test_home_store"
  "test_home_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_home_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
