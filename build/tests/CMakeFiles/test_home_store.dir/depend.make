# Empty dependencies file for test_home_store.
# This may be replaced when dependencies are built.
