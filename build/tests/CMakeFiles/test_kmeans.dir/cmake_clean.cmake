file(REMOVE_RECURSE
  "CMakeFiles/test_kmeans.dir/test_kmeans.cpp.o"
  "CMakeFiles/test_kmeans.dir/test_kmeans.cpp.o.d"
  "test_kmeans"
  "test_kmeans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kmeans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
