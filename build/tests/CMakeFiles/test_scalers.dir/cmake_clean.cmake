file(REMOVE_RECURSE
  "CMakeFiles/test_scalers.dir/test_scalers.cpp.o"
  "CMakeFiles/test_scalers.dir/test_scalers.cpp.o.d"
  "test_scalers"
  "test_scalers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scalers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
