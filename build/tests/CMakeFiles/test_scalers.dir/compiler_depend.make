# Empty compiler generated dependencies file for test_scalers.
# This may be replaced when dependencies are built.
