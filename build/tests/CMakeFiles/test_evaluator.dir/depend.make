# Empty dependencies file for test_evaluator.
# This may be replaced when dependencies are built.
