file(REMOVE_RECURSE
  "CMakeFiles/test_extensions_dist.dir/test_extensions_dist.cpp.o"
  "CMakeFiles/test_extensions_dist.dir/test_extensions_dist.cpp.o.d"
  "test_extensions_dist"
  "test_extensions_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_extensions_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
