# Empty dependencies file for test_delta.
# This may be replaced when dependencies are built.
