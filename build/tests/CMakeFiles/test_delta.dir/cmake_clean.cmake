file(REMOVE_RECURSE
  "CMakeFiles/test_delta.dir/test_delta.cpp.o"
  "CMakeFiles/test_delta.dir/test_delta.cpp.o.d"
  "test_delta"
  "test_delta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
