file(REMOVE_RECURSE
  "CMakeFiles/test_pca.dir/test_pca.cpp.o"
  "CMakeFiles/test_pca.dir/test_pca.cpp.o.d"
  "test_pca"
  "test_pca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
