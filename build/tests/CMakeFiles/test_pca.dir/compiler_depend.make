# Empty compiler generated dependencies file for test_pca.
# This may be replaced when dependencies are built.
