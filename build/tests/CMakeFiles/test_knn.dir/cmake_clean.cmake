file(REMOVE_RECURSE
  "CMakeFiles/test_knn.dir/test_knn.cpp.o"
  "CMakeFiles/test_knn.dir/test_knn.cpp.o.d"
  "test_knn"
  "test_knn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_knn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
