# Empty compiler generated dependencies file for test_knn.
# This may be replaced when dependencies are built.
