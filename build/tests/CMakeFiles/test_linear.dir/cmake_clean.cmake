file(REMOVE_RECURSE
  "CMakeFiles/test_linear.dir/test_linear.cpp.o"
  "CMakeFiles/test_linear.dir/test_linear.cpp.o.d"
  "test_linear"
  "test_linear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_linear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
