# Empty dependencies file for test_templates.
# This may be replaced when dependencies are built.
