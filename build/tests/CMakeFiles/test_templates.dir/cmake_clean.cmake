file(REMOVE_RECURSE
  "CMakeFiles/test_templates.dir/test_templates.cpp.o"
  "CMakeFiles/test_templates.dir/test_templates.cpp.o.d"
  "test_templates"
  "test_templates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_templates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
