# Empty dependencies file for test_param.
# This may be replaced when dependencies are built.
