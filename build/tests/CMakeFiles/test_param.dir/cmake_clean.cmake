file(REMOVE_RECURSE
  "CMakeFiles/test_param.dir/test_param.cpp.o"
  "CMakeFiles/test_param.dir/test_param.cpp.o.d"
  "test_param"
  "test_param.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_param.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
