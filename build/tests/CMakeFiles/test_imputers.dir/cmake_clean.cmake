file(REMOVE_RECURSE
  "CMakeFiles/test_imputers.dir/test_imputers.cpp.o"
  "CMakeFiles/test_imputers.dir/test_imputers.cpp.o.d"
  "test_imputers"
  "test_imputers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_imputers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
