# Empty dependencies file for test_imputers.
# This may be replaced when dependencies are built.
