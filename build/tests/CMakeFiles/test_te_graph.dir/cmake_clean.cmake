file(REMOVE_RECURSE
  "CMakeFiles/test_te_graph.dir/test_te_graph.cpp.o"
  "CMakeFiles/test_te_graph.dir/test_te_graph.cpp.o.d"
  "test_te_graph"
  "test_te_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_te_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
