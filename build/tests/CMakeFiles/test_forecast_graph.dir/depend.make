# Empty dependencies file for test_forecast_graph.
# This may be replaced when dependencies are built.
