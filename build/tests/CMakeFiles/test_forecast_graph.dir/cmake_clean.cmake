file(REMOVE_RECURSE
  "CMakeFiles/test_forecast_graph.dir/test_forecast_graph.cpp.o"
  "CMakeFiles/test_forecast_graph.dir/test_forecast_graph.cpp.o.d"
  "test_forecast_graph"
  "test_forecast_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_forecast_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
