file(REMOVE_RECURSE
  "CMakeFiles/test_feature_selection.dir/test_feature_selection.cpp.o"
  "CMakeFiles/test_feature_selection.dir/test_feature_selection.cpp.o.d"
  "test_feature_selection"
  "test_feature_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_feature_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
