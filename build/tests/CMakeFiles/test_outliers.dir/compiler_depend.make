# Empty compiler generated dependencies file for test_outliers.
# This may be replaced when dependencies are built.
