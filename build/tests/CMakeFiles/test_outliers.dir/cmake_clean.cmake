file(REMOVE_RECURSE
  "CMakeFiles/test_outliers.dir/test_outliers.cpp.o"
  "CMakeFiles/test_outliers.dir/test_outliers.cpp.o.d"
  "test_outliers"
  "test_outliers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_outliers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
