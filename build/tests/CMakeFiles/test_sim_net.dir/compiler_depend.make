# Empty compiler generated dependencies file for test_sim_net.
# This may be replaced when dependencies are built.
