file(REMOVE_RECURSE
  "CMakeFiles/test_sim_net.dir/test_sim_net.cpp.o"
  "CMakeFiles/test_sim_net.dir/test_sim_net.cpp.o.d"
  "test_sim_net"
  "test_sim_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
