file(REMOVE_RECURSE
  "libcoda.a"
)
