# Empty dependencies file for coda.
# This may be replaced when dependencies are built.
