
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cross_validation.cpp" "src/CMakeFiles/coda.dir/core/cross_validation.cpp.o" "gcc" "src/CMakeFiles/coda.dir/core/cross_validation.cpp.o.d"
  "/root/repo/src/core/evaluator.cpp" "src/CMakeFiles/coda.dir/core/evaluator.cpp.o" "gcc" "src/CMakeFiles/coda.dir/core/evaluator.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/CMakeFiles/coda.dir/core/metrics.cpp.o" "gcc" "src/CMakeFiles/coda.dir/core/metrics.cpp.o.d"
  "/root/repo/src/core/nested_cv.cpp" "src/CMakeFiles/coda.dir/core/nested_cv.cpp.o" "gcc" "src/CMakeFiles/coda.dir/core/nested_cv.cpp.o.d"
  "/root/repo/src/core/param.cpp" "src/CMakeFiles/coda.dir/core/param.cpp.o" "gcc" "src/CMakeFiles/coda.dir/core/param.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/CMakeFiles/coda.dir/core/pipeline.cpp.o" "gcc" "src/CMakeFiles/coda.dir/core/pipeline.cpp.o.d"
  "/root/repo/src/core/te_graph.cpp" "src/CMakeFiles/coda.dir/core/te_graph.cpp.o" "gcc" "src/CMakeFiles/coda.dir/core/te_graph.cpp.o.d"
  "/root/repo/src/darr/client.cpp" "src/CMakeFiles/coda.dir/darr/client.cpp.o" "gcc" "src/CMakeFiles/coda.dir/darr/client.cpp.o.d"
  "/root/repo/src/darr/cooperative.cpp" "src/CMakeFiles/coda.dir/darr/cooperative.cpp.o" "gcc" "src/CMakeFiles/coda.dir/darr/cooperative.cpp.o.d"
  "/root/repo/src/darr/record.cpp" "src/CMakeFiles/coda.dir/darr/record.cpp.o" "gcc" "src/CMakeFiles/coda.dir/darr/record.cpp.o.d"
  "/root/repo/src/darr/repository.cpp" "src/CMakeFiles/coda.dir/darr/repository.cpp.o" "gcc" "src/CMakeFiles/coda.dir/darr/repository.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/CMakeFiles/coda.dir/data/dataset.cpp.o" "gcc" "src/CMakeFiles/coda.dir/data/dataset.cpp.o.d"
  "/root/repo/src/data/fingerprint.cpp" "src/CMakeFiles/coda.dir/data/fingerprint.cpp.o" "gcc" "src/CMakeFiles/coda.dir/data/fingerprint.cpp.o.d"
  "/root/repo/src/data/matrix.cpp" "src/CMakeFiles/coda.dir/data/matrix.cpp.o" "gcc" "src/CMakeFiles/coda.dir/data/matrix.cpp.o.d"
  "/root/repo/src/data/synthetic.cpp" "src/CMakeFiles/coda.dir/data/synthetic.cpp.o" "gcc" "src/CMakeFiles/coda.dir/data/synthetic.cpp.o.d"
  "/root/repo/src/data/time_series.cpp" "src/CMakeFiles/coda.dir/data/time_series.cpp.o" "gcc" "src/CMakeFiles/coda.dir/data/time_series.cpp.o.d"
  "/root/repo/src/dist/client_cache.cpp" "src/CMakeFiles/coda.dir/dist/client_cache.cpp.o" "gcc" "src/CMakeFiles/coda.dir/dist/client_cache.cpp.o.d"
  "/root/repo/src/dist/delta.cpp" "src/CMakeFiles/coda.dir/dist/delta.cpp.o" "gcc" "src/CMakeFiles/coda.dir/dist/delta.cpp.o.d"
  "/root/repo/src/dist/home_store.cpp" "src/CMakeFiles/coda.dir/dist/home_store.cpp.o" "gcc" "src/CMakeFiles/coda.dir/dist/home_store.cpp.o.d"
  "/root/repo/src/dist/remote_service.cpp" "src/CMakeFiles/coda.dir/dist/remote_service.cpp.o" "gcc" "src/CMakeFiles/coda.dir/dist/remote_service.cpp.o.d"
  "/root/repo/src/dist/replication.cpp" "src/CMakeFiles/coda.dir/dist/replication.cpp.o" "gcc" "src/CMakeFiles/coda.dir/dist/replication.cpp.o.d"
  "/root/repo/src/dist/sim_net.cpp" "src/CMakeFiles/coda.dir/dist/sim_net.cpp.o" "gcc" "src/CMakeFiles/coda.dir/dist/sim_net.cpp.o.d"
  "/root/repo/src/dist/update_monitor.cpp" "src/CMakeFiles/coda.dir/dist/update_monitor.cpp.o" "gcc" "src/CMakeFiles/coda.dir/dist/update_monitor.cpp.o.d"
  "/root/repo/src/ml/decision_tree.cpp" "src/CMakeFiles/coda.dir/ml/decision_tree.cpp.o" "gcc" "src/CMakeFiles/coda.dir/ml/decision_tree.cpp.o.d"
  "/root/repo/src/ml/feature_selection.cpp" "src/CMakeFiles/coda.dir/ml/feature_selection.cpp.o" "gcc" "src/CMakeFiles/coda.dir/ml/feature_selection.cpp.o.d"
  "/root/repo/src/ml/gradient_boosting.cpp" "src/CMakeFiles/coda.dir/ml/gradient_boosting.cpp.o" "gcc" "src/CMakeFiles/coda.dir/ml/gradient_boosting.cpp.o.d"
  "/root/repo/src/ml/imputers.cpp" "src/CMakeFiles/coda.dir/ml/imputers.cpp.o" "gcc" "src/CMakeFiles/coda.dir/ml/imputers.cpp.o.d"
  "/root/repo/src/ml/iterative_imputer.cpp" "src/CMakeFiles/coda.dir/ml/iterative_imputer.cpp.o" "gcc" "src/CMakeFiles/coda.dir/ml/iterative_imputer.cpp.o.d"
  "/root/repo/src/ml/kernel_pca.cpp" "src/CMakeFiles/coda.dir/ml/kernel_pca.cpp.o" "gcc" "src/CMakeFiles/coda.dir/ml/kernel_pca.cpp.o.d"
  "/root/repo/src/ml/kmeans.cpp" "src/CMakeFiles/coda.dir/ml/kmeans.cpp.o" "gcc" "src/CMakeFiles/coda.dir/ml/kmeans.cpp.o.d"
  "/root/repo/src/ml/knn.cpp" "src/CMakeFiles/coda.dir/ml/knn.cpp.o" "gcc" "src/CMakeFiles/coda.dir/ml/knn.cpp.o.d"
  "/root/repo/src/ml/lda.cpp" "src/CMakeFiles/coda.dir/ml/lda.cpp.o" "gcc" "src/CMakeFiles/coda.dir/ml/lda.cpp.o.d"
  "/root/repo/src/ml/linalg.cpp" "src/CMakeFiles/coda.dir/ml/linalg.cpp.o" "gcc" "src/CMakeFiles/coda.dir/ml/linalg.cpp.o.d"
  "/root/repo/src/ml/linear.cpp" "src/CMakeFiles/coda.dir/ml/linear.cpp.o" "gcc" "src/CMakeFiles/coda.dir/ml/linear.cpp.o.d"
  "/root/repo/src/ml/mlp.cpp" "src/CMakeFiles/coda.dir/ml/mlp.cpp.o" "gcc" "src/CMakeFiles/coda.dir/ml/mlp.cpp.o.d"
  "/root/repo/src/ml/naive_bayes.cpp" "src/CMakeFiles/coda.dir/ml/naive_bayes.cpp.o" "gcc" "src/CMakeFiles/coda.dir/ml/naive_bayes.cpp.o.d"
  "/root/repo/src/ml/outliers.cpp" "src/CMakeFiles/coda.dir/ml/outliers.cpp.o" "gcc" "src/CMakeFiles/coda.dir/ml/outliers.cpp.o.d"
  "/root/repo/src/ml/pca.cpp" "src/CMakeFiles/coda.dir/ml/pca.cpp.o" "gcc" "src/CMakeFiles/coda.dir/ml/pca.cpp.o.d"
  "/root/repo/src/ml/random_forest.cpp" "src/CMakeFiles/coda.dir/ml/random_forest.cpp.o" "gcc" "src/CMakeFiles/coda.dir/ml/random_forest.cpp.o.d"
  "/root/repo/src/ml/scalers.cpp" "src/CMakeFiles/coda.dir/ml/scalers.cpp.o" "gcc" "src/CMakeFiles/coda.dir/ml/scalers.cpp.o.d"
  "/root/repo/src/nn/activations.cpp" "src/CMakeFiles/coda.dir/nn/activations.cpp.o" "gcc" "src/CMakeFiles/coda.dir/nn/activations.cpp.o.d"
  "/root/repo/src/nn/conv1d.cpp" "src/CMakeFiles/coda.dir/nn/conv1d.cpp.o" "gcc" "src/CMakeFiles/coda.dir/nn/conv1d.cpp.o.d"
  "/root/repo/src/nn/dense.cpp" "src/CMakeFiles/coda.dir/nn/dense.cpp.o" "gcc" "src/CMakeFiles/coda.dir/nn/dense.cpp.o.d"
  "/root/repo/src/nn/dropout.cpp" "src/CMakeFiles/coda.dir/nn/dropout.cpp.o" "gcc" "src/CMakeFiles/coda.dir/nn/dropout.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/CMakeFiles/coda.dir/nn/loss.cpp.o" "gcc" "src/CMakeFiles/coda.dir/nn/loss.cpp.o.d"
  "/root/repo/src/nn/lstm.cpp" "src/CMakeFiles/coda.dir/nn/lstm.cpp.o" "gcc" "src/CMakeFiles/coda.dir/nn/lstm.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/CMakeFiles/coda.dir/nn/optimizer.cpp.o" "gcc" "src/CMakeFiles/coda.dir/nn/optimizer.cpp.o.d"
  "/root/repo/src/nn/sequential.cpp" "src/CMakeFiles/coda.dir/nn/sequential.cpp.o" "gcc" "src/CMakeFiles/coda.dir/nn/sequential.cpp.o.d"
  "/root/repo/src/nn/trainer.cpp" "src/CMakeFiles/coda.dir/nn/trainer.cpp.o" "gcc" "src/CMakeFiles/coda.dir/nn/trainer.cpp.o.d"
  "/root/repo/src/templates/anomaly.cpp" "src/CMakeFiles/coda.dir/templates/anomaly.cpp.o" "gcc" "src/CMakeFiles/coda.dir/templates/anomaly.cpp.o.d"
  "/root/repo/src/templates/cohort.cpp" "src/CMakeFiles/coda.dir/templates/cohort.cpp.o" "gcc" "src/CMakeFiles/coda.dir/templates/cohort.cpp.o.d"
  "/root/repo/src/templates/failure_prediction.cpp" "src/CMakeFiles/coda.dir/templates/failure_prediction.cpp.o" "gcc" "src/CMakeFiles/coda.dir/templates/failure_prediction.cpp.o.d"
  "/root/repo/src/templates/root_cause.cpp" "src/CMakeFiles/coda.dir/templates/root_cause.cpp.o" "gcc" "src/CMakeFiles/coda.dir/templates/root_cause.cpp.o.d"
  "/root/repo/src/ts/forecast_graph.cpp" "src/CMakeFiles/coda.dir/ts/forecast_graph.cpp.o" "gcc" "src/CMakeFiles/coda.dir/ts/forecast_graph.cpp.o.d"
  "/root/repo/src/ts/forecast_pipeline.cpp" "src/CMakeFiles/coda.dir/ts/forecast_pipeline.cpp.o" "gcc" "src/CMakeFiles/coda.dir/ts/forecast_pipeline.cpp.o.d"
  "/root/repo/src/ts/forecasters.cpp" "src/CMakeFiles/coda.dir/ts/forecasters.cpp.o" "gcc" "src/CMakeFiles/coda.dir/ts/forecasters.cpp.o.d"
  "/root/repo/src/ts/nn_forecasters.cpp" "src/CMakeFiles/coda.dir/ts/nn_forecasters.cpp.o" "gcc" "src/CMakeFiles/coda.dir/ts/nn_forecasters.cpp.o.d"
  "/root/repo/src/ts/windowing.cpp" "src/CMakeFiles/coda.dir/ts/windowing.cpp.o" "gcc" "src/CMakeFiles/coda.dir/ts/windowing.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "src/CMakeFiles/coda.dir/util/csv.cpp.o" "gcc" "src/CMakeFiles/coda.dir/util/csv.cpp.o.d"
  "/root/repo/src/util/hash.cpp" "src/CMakeFiles/coda.dir/util/hash.cpp.o" "gcc" "src/CMakeFiles/coda.dir/util/hash.cpp.o.d"
  "/root/repo/src/util/string_util.cpp" "src/CMakeFiles/coda.dir/util/string_util.cpp.o" "gcc" "src/CMakeFiles/coda.dir/util/string_util.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "src/CMakeFiles/coda.dir/util/thread_pool.cpp.o" "gcc" "src/CMakeFiles/coda.dir/util/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
