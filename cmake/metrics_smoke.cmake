# Runs an example binary with CODA_METRICS_DUMP=1 and checks that the JSON
# metrics snapshot printed on exit mentions every required metric family.
#
# Expected -D variables:
#   SMOKE_BINARY    - path to the example executable
#   SMOKE_FAMILIES  - comma-separated list of metric names to grep for

if(NOT DEFINED SMOKE_BINARY OR NOT DEFINED SMOKE_FAMILIES)
  message(FATAL_ERROR "metrics_smoke: SMOKE_BINARY and SMOKE_FAMILIES required")
endif()

set(ENV{CODA_METRICS_DUMP} "1")
execute_process(
  COMMAND ${SMOKE_BINARY}
  OUTPUT_VARIABLE smoke_output
  ERROR_VARIABLE smoke_errors
  RESULT_VARIABLE smoke_status
)

if(NOT smoke_status EQUAL 0)
  message(FATAL_ERROR
      "metrics_smoke: ${SMOKE_BINARY} exited with ${smoke_status}\n"
      "${smoke_errors}")
endif()

string(FIND "${smoke_output}" "--- coda metrics snapshot ---" marker_pos)
if(marker_pos EQUAL -1)
  message(FATAL_ERROR
      "metrics_smoke: no metrics snapshot in output of ${SMOKE_BINARY} "
      "(CODA_METRICS_DUMP=1 had no effect)")
endif()

string(REPLACE "," ";" smoke_family_list "${SMOKE_FAMILIES}")
foreach(family ${smoke_family_list})
  string(FIND "${smoke_output}" "\"${family}\"" family_pos)
  if(family_pos EQUAL -1)
    message(FATAL_ERROR
        "metrics_smoke: metric family '${family}' missing from the snapshot "
        "of ${SMOKE_BINARY}")
  endif()
endforeach()

message(STATUS "metrics_smoke: all families present")
