#!/usr/bin/env bash
# Tier-1 gate (ROADMAP.md): plain build + full test suite, then the chaos
# suite again under thread sanitizer. A chaos failure prints the fault
# schedule (seed, drop rate, partition/crash windows) to replay.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier 1: build + full ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"

echo "== tier 1: kernel bench smoke (ctest -L perf) =="
ctest --test-dir build -L perf --output-on-failure

echo "== tier 1: Chrome trace export + span-tree invariants =="
scripts/trace_check.sh build

echo "== tier 1: chaos suite under ThreadSanitizer (ctest -L chaos) =="
cmake -B build-tsan -S . -DCODA_SANITIZE=thread >/dev/null
cmake --build build-tsan -j"$(nproc)" --target test_chaos
ctest --test-dir build-tsan -L chaos --output-on-failure

echo "tier 1 OK"
