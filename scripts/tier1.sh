#!/usr/bin/env bash
# Tier-1 gate (ROADMAP.md): plain build + full test suite, the chaos
# suite again under thread sanitizer, and the bench regression gate. A
# chaos failure prints the fault schedule (seed, drop rate, partition/
# crash windows) to replay.
#
#   scripts/tier1.sh                      # gate against committed baselines
#   scripts/tier1.sh --update-baselines   # re-baseline after an intentional
#                                         # perf change (commit the files)
set -euo pipefail
cd "$(dirname "$0")/.."

UPDATE_BASELINES=""
if [[ "${1:-}" == "--update-baselines" ]]; then
  UPDATE_BASELINES="--update-baselines"
fi

echo "== tier 1: build + full ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"

echo "== tier 1: kernel bench smoke (ctest -L perf) =="
ctest --test-dir build -L perf --output-on-failure

echo "== tier 1: fleet-scale cooperative runs (ctest -L fleet) =="
ctest --test-dir build -L fleet --output-on-failure

echo "== tier 1: successive-halving search scheduler (ctest -L search) =="
ctest --test-dir build -L search --output-on-failure

echo "== tier 1: Chrome trace export + span-tree invariants =="
scripts/trace_check.sh build

echo "== tier 1: folded-profile export + reset contract =="
scripts/profile_check.sh build

echo "== tier 1: chaos + plan-differential + profiler suites under ThreadSanitizer =="
cmake -B build-tsan -S . -DCODA_SANITIZE=thread >/dev/null
cmake --build build-tsan -j"$(nproc)" \
    --target test_chaos test_plan_compiler test_profiler
ctest --test-dir build-tsan -L chaos --output-on-failure
ctest --test-dir build-tsan -R '^test_plan_compiler$' --output-on-failure
# The profiler's lock-free arenas and the pool/timerwheel instrumentation
# get their data-race probe here (the submit storm in test_profiler).
ctest --test-dir build-tsan -R '^test_profiler$' --output-on-failure

echo "== tier 1: bench regression gate (scripts/bench_gate.py) =="
python3 scripts/bench_gate.py --self-test
# Re-measure the gated artifacts (artifact tables only; the google-benchmark
# micro benches are skipped via an unmatchable filter).
build/bench/bench_fig2_darr_cooperation \
    --bench-json=build/BENCH_fig2.json --benchmark_filter='^$' >/dev/null
# The fig-11 and fleet runs also drop their folded profiles next to the
# fresh baselines (flamegraph.pl / speedscope input; always-on profiler,
# DESIGN.md §15).
build/bench/bench_fig11_ts_pipeline_graph \
    --bench-json=build/BENCH_fig11.json \
    --profile-folded=build/PROF_fig11.folded --benchmark_filter='^$' \
    >/dev/null
build/bench/bench_fleet \
    --bench-json=build/BENCH_fleet.json \
    --profile-folded=build/PROF_fleet.folded --benchmark_filter='^$' \
    >/dev/null
# The search-scheduler races (exhaustive vs halving on the golden-seed
# graphs, DESIGN.md §16).
build/bench/bench_search \
    --bench-json=build/BENCH_search.json --benchmark_filter='^$' >/dev/null
# 15% band on timings (so a >=20% regression of a committed baseline
# fails); entries flagged "exact" must match bit-for-bit regardless, and
# the fleet bench carries its own per-entry bands for the contention
# timings. The --require names pin the fleet acceptance invariants
# (512-client best-pipeline identity, zero redundant evaluations) and the
# fig-11 fusion-ablation bit-identity check (DESIGN.md §14) so they
# cannot be dropped or renamed out of the gate unnoticed. The search pins
# hold the halving acceptance bar (DESIGN.md §16): identical best pipeline
# on every golden-seed graph (identity bools, exact) at the pinned rung
# fold budgets (fold counts, exact — <= 60% of exhaustive by construction).
python3 scripts/bench_gate.py --tolerance 0.15 --print-diff \
    ${UPDATE_BASELINES} \
    --pair build/BENCH_fig2.json BENCH_fig2.json \
    --pair build/BENCH_fig11.json BENCH_fig11.json \
    --pair build/BENCH_fleet.json BENCH_fleet.json \
    --pair build/BENCH_search.json BENCH_search.json \
    --require fleet512_best_pipeline_matches \
    --require fleet512_redundant_evals \
    --require fig11_fusion_identical \
    --require fig11_fusion_fused \
    --require fig11_halving_identical \
    --require fig11_halving_fold_evals \
    --require search_fig3_tabular_identical \
    --require search_fig3_tabular_halving_folds \
    --require search_failure_prediction_identical \
    --require search_failure_prediction_halving_folds \
    --require search_root_cause_identical \
    --require search_root_cause_halving_folds \
    --require search_anomaly_identical \
    --require search_anomaly_halving_folds \
    --require search_cohort_identical \
    --require search_cohort_halving_folds

echo "tier 1 OK"
