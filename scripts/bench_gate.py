#!/usr/bin/env python3
"""Bench regression gate: compare fresh BENCH_*.json files against the
committed baselines.

Each bench binary emits a baseline file via `--bench-json=<path>` (see
bench/bench_util.h): whole-run wall time, named entries recorded with
record_entry(), and the final metrics snapshot. This gate compares a
freshly measured file against the committed one:

  * entries flagged "exact": true carry deterministic counts (candidate
    totals, expired-claim counts, search-path counts) and must match the
    baseline exactly — a drift here is a correctness regression, not noise;
  * wall_seconds / throughput on the remaining entries may regress by at
    most --tolerance (relative; a baseline entry can tighten or loosen its
    own band with a "tolerance" field, which wins over the flag).
    Improvements never fail;
  * entries present in the baseline but missing from the fresh run (or
    vice versa) fail: a silently dropped measurement is how regressions
    hide.

Usage:
  bench_gate.py --pair fresh.json baseline.json [--pair ...]
                [--tolerance 0.5] [--update-baselines]
                [--require ENTRY ...] [--print-diff]
  bench_gate.py --self-test

--print-diff renders every failing entry as a side-by-side table — the
baseline value, the fresh value, and the tolerance that was applied — so a
gate failure in CI is diagnosable from the log alone.

--require ENTRY (repeatable) asserts that the named entry exists in both
the fresh run and the baseline of at least one pair — the guard for
acceptance invariants (e.g. the fleet bench's zero-redundancy and
best-pipeline-identity entries) that must never be silently dropped or
renamed out of the gate.

--update-baselines rewrites each baseline with the fresh measurement
instead of failing (the escape hatch after an intentional perf change —
commit the rewritten files).
"""

import argparse
import json
import math
import os
import shutil
import sys
import tempfile


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def entry_map(doc):
    return {e["name"]: e for e in doc.get("entries", [])}


def compare_pair(fresh_doc, baseline_doc, tolerance, diffs=None):
    """Returns a list of failure strings (empty = pass).

    When `diffs` is a list, every failing entry also appends a structured
    row {name, field, baseline, current, tolerance} for --print-diff's
    side-by-side rendering (missing/new entries use None for the absent
    side).
    """
    failures = []
    fresh = entry_map(fresh_doc)
    base = entry_map(baseline_doc)

    def record_diff(name, field, baseline, current, entry_tolerance):
        if diffs is not None:
            diffs.append({"name": name, "field": field,
                          "baseline": baseline, "current": current,
                          "tolerance": entry_tolerance})

    for name in sorted(set(base) - set(fresh)):
        failures.append(f"entry '{name}' present in baseline but missing "
                        "from the fresh run")
        record_diff(name, "wall_seconds",
                    base[name].get("wall_seconds"), None,
                    base[name].get("tolerance", tolerance))
    for name in sorted(set(fresh) - set(base)):
        failures.append(f"entry '{name}' is new (not in the baseline); "
                        "re-baseline with --update-baselines")
        record_diff(name, "wall_seconds", None,
                    fresh[name].get("wall_seconds"), tolerance)

    for name in sorted(set(fresh) & set(base)):
        f, b = fresh[name], base[name]
        entry_tolerance = b.get("tolerance", tolerance)
        if b.get("exact", False) or f.get("exact", False):
            # Deterministic count: exact equality on the throughput field
            # (where record_entry puts the count).
            if f.get("throughput") != b.get("throughput"):
                failures.append(
                    f"exact entry '{name}': fresh {f.get('throughput')} != "
                    f"baseline {b.get('throughput')}")
                record_diff(name, "throughput (exact)", b.get("throughput"),
                            f.get("throughput"), 0.0)
            continue
        for field, lower_is_better in (("wall_seconds", True),
                                       ("throughput", False)):
            field_failures = check_regression(name, field,
                                              f.get(field, 0.0),
                                              b.get(field, 0.0),
                                              entry_tolerance,
                                              lower_is_better)
            failures.extend(field_failures)
            if field_failures:
                record_diff(name, field, b.get(field), f.get(field),
                            entry_tolerance)
    return failures


def check_regression(name, field, fresh, base, tolerance, lower_is_better):
    if base is None or fresh is None:
        return [f"entry '{name}': missing {field}"]
    if base <= 0.0 or not math.isfinite(base) or not math.isfinite(fresh):
        return []  # field not meaningful for this entry
    if lower_is_better:
        regression = (fresh - base) / base
    else:
        regression = (base - fresh) / base
    if regression > tolerance:
        direction = "slower" if lower_is_better else "lower"
        return [f"entry '{name}': {field} regressed {regression:.0%} "
                f"{direction} (fresh {fresh:.6g} vs baseline {base:.6g}, "
                f"tolerance {tolerance:.0%})"]
    return []


def format_diff_table(diffs):
    """Side-by-side baseline-vs-current rows for failing entries
    (--print-diff)."""
    def cell(value):
        if value is None:
            return "(missing)"
        if isinstance(value, float):
            return f"{value:.6g}"
        return str(value)

    header = ("entry", "field", "baseline", "current", "tolerance")
    rows = [(d["name"], d["field"], cell(d["baseline"]), cell(d["current"]),
             f"{d['tolerance']:.0%}") for d in diffs]
    widths = [max(len(header[i]), *(len(r[i]) for r in rows))
              for i in range(len(header))]
    lines = ["  " + "  ".join(h.ljust(w) for h, w in zip(header, widths)),
             "  " + "  ".join("-" * w for w in widths)]
    lines += ["  " + "  ".join(c.ljust(w) for c, w in zip(row, widths))
              for row in rows]
    return "\n".join(lines)


def run_pairs(pairs, tolerance, update, require=(), print_diff=False):
    any_failed = False
    fresh_names, base_names = set(), set()
    for fresh_path, baseline_path in pairs:
        if not os.path.exists(fresh_path):
            print(f"FAIL {fresh_path}: fresh measurement missing")
            any_failed = True
            continue
        fresh_doc = load(fresh_path)
        fresh_names.update(entry_map(fresh_doc))
        if not os.path.exists(baseline_path):
            if update:
                shutil.copyfile(fresh_path, baseline_path)
                print(f"NEW  {baseline_path}: baseline created from "
                      f"{fresh_path}")
                base_names.update(entry_map(fresh_doc))
            else:
                print(f"FAIL {baseline_path}: committed baseline missing "
                      "(run with --update-baselines to create it)")
                any_failed = True
            continue
        baseline_doc = load(baseline_path)
        base_names.update(entry_map(baseline_doc))
        diffs = [] if print_diff else None
        failures = compare_pair(fresh_doc, baseline_doc, tolerance, diffs)
        if failures and update:
            shutil.copyfile(fresh_path, baseline_path)
            print(f"UPDATED {baseline_path} from {fresh_path} "
                  f"({len(failures)} difference(s) accepted)")
        elif failures:
            any_failed = True
            print(f"FAIL {fresh_path} vs {baseline_path}:")
            for failure in failures:
                print(f"  - {failure}")
            if diffs:
                print(format_diff_table(diffs))
        else:
            print(f"OK   {fresh_path} vs {baseline_path}")
    for name in require:
        if name not in fresh_names:
            print(f"FAIL required entry '{name}' missing from every fresh "
                  "run")
            any_failed = True
        elif name not in base_names:
            print(f"FAIL required entry '{name}' missing from every "
                  "baseline")
            any_failed = True
    return 1 if any_failed else 0


# ---------------------------------------------------------------------------
# Self test: exercises the comparison logic without any bench binaries.
# ---------------------------------------------------------------------------

def self_test():
    def doc(entries):
        return {"bench": "selftest", "wall_seconds": 1.0, "entries": entries}

    def entry(name, wall, throughput=0.0, exact=False):
        return {"name": name, "wall_seconds": wall,
                "throughput": throughput, "unit": "", "exact": exact}

    checks = []

    # Identical docs pass.
    d = doc([entry("a", 1.0, 10.0), entry("n", 0.0, 16.0, exact=True)])
    checks.append(("identical", compare_pair(d, d, 0.5) == []))

    # 20% wall regression fails at 15% tolerance, passes at 50%.
    fresh = doc([entry("a", 1.2)])
    base = doc([entry("a", 1.0)])
    checks.append(("regression caught",
                   compare_pair(fresh, base, 0.15) != []))
    checks.append(("jitter tolerated",
                   compare_pair(fresh, base, 0.5) == []))

    # Improvements never fail.
    checks.append(("improvement ok",
                   compare_pair(doc([entry("a", 0.5, 20.0)]),
                                doc([entry("a", 1.0, 10.0)]), 0.15) == []))

    # Per-entry tolerance on the baseline wins over the flag.
    wide = doc([entry("a", 1.2)])
    wide["entries"][0] = dict(wide["entries"][0])
    loose_base = doc([dict(entry("a", 1.0), tolerance=0.5)])
    checks.append(("per-entry tolerance wins",
                   compare_pair(wide, loose_base, 0.01) == []))

    # Exact entries: off-by-one fails regardless of tolerance.
    checks.append(("exact drift caught",
                   compare_pair(doc([entry("n", 0.0, 15.0, exact=True)]),
                                doc([entry("n", 0.0, 16.0, exact=True)]),
                                10.0) != []))

    # Dropped and new entries fail.
    checks.append(("dropped entry caught",
                   compare_pair(doc([]), doc([entry("a", 1.0)]), 0.5) != []))
    checks.append(("new entry caught",
                   compare_pair(doc([entry("a", 1.0)]), doc([]), 0.5) != []))

    # --print-diff: failing entries produce side-by-side rows carrying the
    # baseline and current values and the tolerance that was applied;
    # passing entries produce none.
    diffs = []
    compare_pair(doc([entry("a", 1.2), entry("b", 1.0)]),
                 doc([entry("a", 1.0), entry("b", 1.0)]), 0.15, diffs)
    checks.append(("diff rows only for failures",
                   [d["name"] for d in diffs] == ["a"]))
    checks.append(("diff row carries both sides",
                   diffs and diffs[0]["baseline"] == 1.0
                   and diffs[0]["current"] == 1.2
                   and diffs[0]["tolerance"] == 0.15))
    rendered = format_diff_table(diffs) if diffs else ""
    checks.append(("diff table renders both values",
                   "baseline" in rendered and "1.2" in rendered
                   and "15%" in rendered))
    exact_diffs = []
    compare_pair(doc([entry("n", 0.0, 15.0, exact=True)]),
                 doc([entry("n", 0.0, 16.0, exact=True)]), 10.0, exact_diffs)
    checks.append(("diff row for exact drift",
                   [d["field"] for d in exact_diffs]
                   == ["throughput (exact)"]))

    # End-to-end through files, including --update-baselines.
    with tempfile.TemporaryDirectory() as tmp:
        fresh_path = os.path.join(tmp, "fresh.json")
        base_path = os.path.join(tmp, "base.json")
        with open(fresh_path, "w", encoding="utf-8") as f:
            json.dump(doc([entry("a", 2.0)]), f)
        with open(base_path, "w", encoding="utf-8") as f:
            json.dump(doc([entry("a", 1.0)]), f)
        checks.append(("file pair fails",
                       run_pairs([(fresh_path, base_path)], 0.15,
                                 update=False) == 1))
        checks.append(("update accepts",
                       run_pairs([(fresh_path, base_path)], 0.15,
                                 update=True) == 0))
        checks.append(("updated baseline passes",
                       run_pairs([(fresh_path, base_path)], 0.15,
                                 update=False) == 0))
        checks.append(("required entry present passes",
                       run_pairs([(fresh_path, base_path)], 0.15,
                                 update=False, require=["a"]) == 0))
        checks.append(("required entry missing fails",
                       run_pairs([(fresh_path, base_path)], 0.15,
                                 update=False,
                                 require=["fleet512_gone"]) == 1))

    failed = [name for name, ok in checks if not ok]
    for name, ok in checks:
        print(f"  {'ok' if ok else 'FAIL'}: {name}")
    if failed:
        print(f"self-test FAILED: {failed}")
        return 1
    print(f"self-test passed ({len(checks)} checks)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pair", nargs=2, action="append", default=[],
                        metavar=("FRESH", "BASELINE"),
                        help="fresh BENCH json vs committed baseline; "
                             "repeatable")
    parser.add_argument("--tolerance", type=float, default=0.50,
                        help="max relative perf regression (default 0.50)")
    parser.add_argument("--update-baselines", action="store_true",
                        help="rewrite baselines from the fresh measurements "
                             "instead of failing")
    parser.add_argument("--require", action="append", default=[],
                        metavar="ENTRY",
                        help="entry name that must exist in the fresh runs "
                             "and baselines; repeatable")
    parser.add_argument("--print-diff", action="store_true",
                        help="on failure, print failing entries as a "
                             "side-by-side baseline-vs-current table with "
                             "the applied tolerance")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in comparison-logic checks")
    args = parser.parse_args()

    if args.self_test:
        sys.exit(self_test())
    if not args.pair:
        parser.error("need at least one --pair (or --self-test)")
    sys.exit(run_pairs([tuple(p) for p in args.pair], args.tolerance,
                       args.update_baselines, args.require,
                       args.print_diff))


if __name__ == "__main__":
    main()
