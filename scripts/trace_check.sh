#!/usr/bin/env bash
# Trace-export gate (DESIGN.md §10): runs the Fig-2 cooperative-search
# artifact with --trace-json, then validates the export twice over —
# it must parse as JSON (python3 -m json.tool), and the span tree must be
# causally sound: every span's parent resolves inside its own trace, each
# complete trace has exactly one root, the export names one process per
# simulated node (>= 2 pids), and the network track is populated.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
BENCH="$BUILD_DIR/bench/bench_fig2_darr_cooperation"
if [[ ! -x "$BENCH" ]]; then
  echo "trace_check: missing $BENCH (build first)" >&2
  exit 1
fi

OUT="$(mktemp /tmp/coda_trace_XXXXXX.json)"
trap 'rm -f "$OUT"' EXIT

echo "== trace check: $BENCH --trace-json=$OUT =="
"$BENCH" --trace-json="$OUT" --benchmark_filter=__none__ >/dev/null

python3 -m json.tool "$OUT" >/dev/null
echo "trace check: valid JSON ($(wc -c <"$OUT") bytes)"

python3 - "$OUT" <<'PYEOF'
import collections
import json
import sys

with open(sys.argv[1]) as f:
    trace = json.load(f)

events = trace["traceEvents"]
dropped = trace.get("otherData", {}).get("dropped", 0)

pids = set()
for e in events:
    if e.get("ph") == "M" and e.get("name") == "process_name":
        pids.add(e["pid"])
assert len(pids) >= 2, f"expected >= 2 processes (nodes), got {len(pids)}"

spans = [e for e in events if e.get("ph") == "X"]
assert spans, "no complete ('X') events in export"
assert any(e.get("cat") == "network" for e in spans), "no network spans"

by_trace = collections.defaultdict(dict)
for e in spans:
    args = e["args"]
    by_trace[args["trace"]][args["span"]] = args["parent"]

roots_per_trace = []
orphans = 0
for trace_id, members in by_trace.items():
    roots = [s for s, parent in members.items() if parent == 0]
    roots_per_trace.append((trace_id, len(roots)))
    orphans += sum(1 for parent in members.values()
                   if parent != 0 and parent not in members)

if dropped == 0:
    # Complete ring: the causal invariants must hold exactly.
    assert orphans == 0, f"{orphans} spans with unresolvable parents"
    bad = [(t, n) for t, n in roots_per_trace if n != 1]
    assert not bad, f"traces without exactly one root: {bad}"
    print(f"trace check: {len(spans)} spans in {len(by_trace)} traces, "
          f"every span parented into a single tree per trace, "
          f"{len(pids)} processes")
else:
    # Ring wrapped: old spans are gone, so only report.
    print(f"trace check: ring wrapped ({dropped} spans dropped), "
          f"skipping strict tree invariants; {len(spans)} spans retained "
          f"in {len(by_trace)} traces, {len(pids)} processes")
PYEOF

echo "trace check OK"
