#!/usr/bin/env bash
# Profiler smoke gate (DESIGN.md §15): runs the Fig-2 cooperative-search
# artifact with --profile-folded, then validates the export — it must be
# non-empty, every line must be well-formed folded-stack text
# ("frame;frame;... <self_ns>"), and the known root regions of a
# cooperative search (eval.run, eval.candidate, darr.client ops) must
# appear. Finally re-runs the pinned reset test to assert that
# obs::prof::reset() leaves the profiler empty.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
BENCH="$BUILD_DIR/bench/bench_fig2_darr_cooperation"
TESTBIN="$BUILD_DIR/tests/test_profiler"
if [[ ! -x "$BENCH" ]]; then
  echo "profile_check: missing $BENCH (build first)" >&2
  exit 1
fi

OUT="$(mktemp /tmp/coda_profile_XXXXXX.folded)"
trap 'rm -f "$OUT"' EXIT

echo "== profile check: $BENCH --profile-folded=$OUT =="
"$BENCH" --profile-folded="$OUT" --benchmark_filter=__none__ >/dev/null

if [[ ! -s "$OUT" ]]; then
  echo "profile check: folded export is empty" >&2
  exit 1
fi

python3 - "$OUT" <<'PYEOF'
import re
import sys

with open(sys.argv[1]) as f:
    lines = [line.rstrip("\n") for line in f if line.strip()]

assert lines, "no folded stacks in export"

well_formed = re.compile(r"^[^ ;]+(;[^ ;]+)* \d+$")
for line in lines:
    assert well_formed.match(line), f"malformed folded line: {line!r}"

roots = {line.split(" ")[0].split(";")[0] for line in lines}
stacks = {line.rsplit(" ", 1)[0] for line in lines}

# A cooperative search must profile the evaluation root and the DARR
# client ops somewhere in the stack set (nodes prefix client stacks).
joined = "\n".join(stacks)
for needle in ("eval.run", "eval.candidate", "darr.client."):
    assert needle in joined, f"expected region '{needle}' in folded stacks"

print(f"profile check: {len(lines)} folded stacks, {len(roots)} root "
      f"frame(s), known regions present")
PYEOF

# Reset contract: obs::prof::reset() must leave the profiler empty (no
# paths, empty folded export) and keep regions usable afterwards.
if [[ -x "$TESTBIN" ]]; then
  "$TESTBIN" --gtest_filter='Profiler.ResetLeavesProfilerEmpty' \
      --gtest_brief=1 >/dev/null
  echo "profile check: reset leaves profiler empty"
else
  echo "profile check: missing $TESTBIN (build first)" >&2
  exit 1
fi

echo "profile check OK"
